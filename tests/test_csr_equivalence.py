"""Equivalence of the CSR flat-array kernel with the legacy engines.

The ``lex-csr`` engine must be *bit-for-bit* interchangeable with the
legacy ``LexShortestPaths``: identical distances, identical canonical
parents, identical canonical paths — under arbitrary banned edge/vertex
restrictions.  These tests drive both engines over the shared graph zoo
and randomized fault sets (plus hypothesis-generated random graphs) and
compare every observable.  The CSR :class:`DistanceOracle` (including
its memo cache and the bidirectional point query) is checked against
the legacy :class:`PythonDistanceOracle` the same way.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.canonical import (
    INF,
    CSRLexShortestPaths,
    DistanceOracle,
    LexShortestPaths,
    PerturbedShortestPaths,
    PythonDistanceOracle,
    make_engine,
    multi_source_distances,
)
from repro.core.errors import GraphError
from repro.core.graph import Graph
from repro.generators import erdos_renyi, path_graph

from tests.zoo import zoo_params


def random_restriction(graph, rng, max_edges=3, max_vertices=3, forbid=(0,)):
    """A random banned edge/vertex set (never banning the vertices in forbid)."""
    edges = sorted(graph.edges())
    banned_edges = rng.sample(edges, k=min(len(edges), rng.randrange(0, max_edges + 1)))
    candidates = [v for v in graph.vertices() if v not in set(forbid)]
    banned_vertices = rng.sample(
        candidates, k=min(len(candidates), rng.randrange(0, max_vertices + 1))
    )
    return banned_edges, banned_vertices


@zoo_params()
def test_full_search_equivalence_under_random_faults(name, graph):
    """Distances, parents and paths agree on every zoo graph × fault set."""
    legacy = LexShortestPaths(graph)
    csr = CSRLexShortestPaths(graph)
    rng = random.Random(hash(name) & 0xFFFF)
    for trial in range(12):
        be, bv = random_restriction(graph, rng)
        res_l = legacy.search(0, banned_edges=be, banned_vertices=bv)
        res_c = csr.search(0, banned_edges=be, banned_vertices=bv)
        assert res_l.distances() == res_c.distances()
        for v in graph.vertices():
            assert res_l.parent(v) == res_c.parent(v)
            if res_l.reached(v):
                assert res_l.path(v) == res_c.path(v)


@zoo_params()
def test_canonical_path_equivalence_targeted(name, graph):
    """Target-limited searches extract identical canonical paths."""
    legacy = LexShortestPaths(graph)
    csr = CSRLexShortestPaths(graph)
    rng = random.Random(1 + (hash(name) & 0xFFFF))
    for trial in range(8):
        be, bv = random_restriction(graph, rng)
        full = legacy.search(0, banned_edges=be, banned_vertices=bv)
        for v in graph.vertices():
            if not full.reached(v):
                continue
            assert csr.canonical_path(
                0, v, banned_edges=be, banned_vertices=bv
            ) == legacy.canonical_path(0, v, banned_edges=be, banned_vertices=bv)


@zoo_params()
def test_distance_oracle_equivalence(name, graph):
    """CSR oracle (memo + bidirectional BFS) == legacy oracle."""
    new = DistanceOracle(graph)
    old = PythonDistanceOracle(graph)
    rng = random.Random(2 + (hash(name) & 0xFFFF))
    for trial in range(40):
        be, bv = random_restriction(graph, rng, forbid=())
        s = rng.randrange(graph.n)
        t = rng.randrange(graph.n)
        # point query twice: second hit exercises the memo cache
        assert new.distance(s, t, be, bv) == old.distance(s, t, be, bv)
        assert new.distance(s, t, be, bv) == old.distance(s, t, be, bv)
        assert new.distances_from(s, be, bv) == old.distances_from(s, be, bv)


@zoo_params()
def test_multi_source_batch_matches_per_source(name, graph):
    rng = random.Random(3 + (hash(name) & 0xFFFF))
    be, bv = random_restriction(graph, rng, forbid=())
    sources = list(graph.vertices())[:4]
    batch = multi_source_distances(graph, sources, be, bv)
    old = PythonDistanceOracle(graph)
    for s, vec in zip(sources, batch):
        assert vec == old.distances_from(s, be, bv)


@zoo_params()
def test_perturbed_csr_inner_loop_matches_lex_distances(name, graph):
    """The CSR-rewritten Dijkstra still yields hop-exact distances."""
    per = PerturbedShortestPaths(graph, seed=11).search(0)
    lex = CSRLexShortestPaths(graph).search(0)
    assert per.distances() == lex.distances()


class TestEngineContract:
    def test_registry_and_default(self):
        g = path_graph(4)
        assert isinstance(make_engine(g), CSRLexShortestPaths)
        assert isinstance(make_engine(g, "lex-csr"), CSRLexShortestPaths)
        assert isinstance(make_engine(g, "lex"), LexShortestPaths)

    def test_banned_source_rejected(self):
        g = path_graph(3)
        with pytest.raises(GraphError):
            CSRLexShortestPaths(g).search(0, banned_vertices=[0])

    def test_invalid_source_rejected(self):
        g = path_graph(3)
        with pytest.raises(GraphError):
            CSRLexShortestPaths(g).search(9)

    def test_search_memo_promotion(self):
        """A repeated restriction with a deeper target is answered correctly
        (the cached target-stopped search must not serve it stale)."""
        g = path_graph(8)
        eng = CSRLexShortestPaths(g)
        near = eng.search(0, banned_edges=[(5, 6)], target=2)
        assert near.dist(2) == 2
        far = eng.search(0, banned_edges=[(5, 6)], target=5)
        assert far.dist(5) == 5
        assert not far.reached(7)  # the ban really cuts
        again = eng.search(0, banned_edges=[(5, 6)])
        assert again.dist(5) == 5 and not again.reached(6)

    def test_engine_sees_graph_mutation(self):
        """Mutating the graph after engine/oracle construction must not
        serve stale snapshots or stale memo entries (the legacy default
        engine read adjacency live on every search)."""
        g = path_graph(4)
        eng = CSRLexShortestPaths(g)
        oracle = DistanceOracle(g)
        assert eng.search(0).dist(3) == 3
        assert oracle.distance(0, 3) == 3
        g.add_edge(0, 3)
        assert eng.search(0).dist(3) == 1
        assert oracle.distance(0, 3) == 1
        assert oracle.distances_from(0) == [0, 1, 2, 1]

    def test_memo_results_stable_across_mixed_targets(self):
        g = erdos_renyi(24, 0.15, seed=6)
        eng = CSRLexShortestPaths(g)
        ref = LexShortestPaths(g)
        rng = random.Random(9)
        for _ in range(60):
            be, bv = random_restriction(g, rng)
            v = rng.randrange(1, g.n)
            res = eng.search(0, banned_edges=be, banned_vertices=bv, target=v)
            expect = ref.search(0, banned_edges=be, banned_vertices=bv, target=v)
            assert res.dist(v) == expect.dist(v)
            if expect.reached(v):
                assert res.path(v) == expect.path(v)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=18),
    p=st.floats(min_value=0.1, max_value=0.5),
    seed=st.integers(min_value=0, max_value=10_000),
    fault_seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_random_graph_random_faults_equivalence(n, p, seed, fault_seed):
    g = erdos_renyi(n, p, seed=seed)
    rng = random.Random(fault_seed)
    be, bv = random_restriction(g, rng)
    res_l = LexShortestPaths(g).search(0, banned_edges=be, banned_vertices=bv)
    res_c = CSRLexShortestPaths(g).search(0, banned_edges=be, banned_vertices=bv)
    assert res_l.distances() == res_c.distances()
    for v in range(g.n):
        assert res_l.parent(v) == res_c.parent(v)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=18),
    p=st.floats(min_value=0.1, max_value=0.5),
    seed=st.integers(min_value=0, max_value=10_000),
    fault_seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_bidirectional_distance_equivalence(n, p, seed, fault_seed):
    g = erdos_renyi(n, p, seed=seed)
    rng = random.Random(fault_seed)
    be, bv = random_restriction(g, rng, forbid=())
    new = DistanceOracle(g)
    old = PythonDistanceOracle(g)
    for s in range(min(g.n, 4)):
        for t in range(g.n):
            assert new.distance(s, t, be, bv) == old.distance(s, t, be, bv)
