"""Equivalence of the CSR and numpy bulk kernels with the legacy engines.

The ``lex-csr`` and ``lex-bulk`` engines must be *bit-for-bit*
interchangeable with the legacy ``LexShortestPaths``: identical
distances, identical canonical parents, identical canonical paths —
under arbitrary banned edge/vertex restrictions.  These tests drive the
engines over the shared graph zoo and randomized fault sets (plus
hypothesis-generated random graphs) and compare every observable.  The
CSR :class:`DistanceOracle` (including its memo cache and the
bidirectional point query) and the :class:`BulkDistanceOracle` are
checked against the legacy :class:`PythonDistanceOracle` the same way.

The zoo graphs sit below the bulk kernel's vectorization crossover
(where it would delegate to the python kernel and the test would prove
nothing about the numpy path), so bulk engines here are built with a
*forced-vectorized* kernel via :func:`forced_bulk_engine`.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bulk import BulkCSRKernel
from repro.core.canonical import (
    INF,
    BulkDistanceOracle,
    BulkLexShortestPaths,
    CDistanceOracle,
    CLexShortestPaths,
    CSRLexShortestPaths,
    DistanceOracle,
    LexShortestPaths,
    PerturbedShortestPaths,
    PythonDistanceOracle,
    make_engine,
    multi_source_distances,
)
from repro.core.ckernel import c_kernel_available
from repro.core.csr import csr_of
from repro.core.errors import GraphError
from repro.core.graph import Graph
from repro.generators import erdos_renyi, path_graph

from tests.zoo import random_restriction, zoo_params

#: The ``lex-c`` tier needs a loadable C kernel (compiler or prebuilt
#: extension); hosts without one run the rest of the suite plus the
#: fallback tests in tests/test_query_batch.py.
needs_ckernel = pytest.mark.skipif(
    not c_kernel_available(), reason="compiled C kernel unavailable"
)


def force_vectorized(graph):
    """Attach a bulk kernel with the size threshold disabled."""
    csr = csr_of(graph)
    csr._bulk = BulkCSRKernel(csr, min_bulk_n=0)
    return csr._bulk


def forced_bulk_engine(graph):
    """A ``lex-bulk`` engine whose kernel always takes the numpy path."""
    force_vectorized(graph)
    return BulkLexShortestPaths(graph)


def forced_bulk_oracle(graph):
    """A :class:`BulkDistanceOracle` sweeping on the forced numpy kernel."""
    force_vectorized(graph)
    return BulkDistanceOracle(graph)


def forced_c_engine(graph):
    """A ``lex-c`` engine whose kernel always takes the vectorized path."""
    force_vectorized(graph)
    return CLexShortestPaths(graph)


def forced_c_oracle(graph):
    """A :class:`CDistanceOracle` over the forced vectorized kernel."""
    force_vectorized(graph)
    return CDistanceOracle(graph)


@zoo_params()
def test_full_search_equivalence_under_random_faults(name, graph):
    """Distances, parents and paths agree on every zoo graph × fault set."""
    legacy = LexShortestPaths(graph)
    csr = CSRLexShortestPaths(graph)
    bulk = forced_bulk_engine(graph)
    rng = random.Random(hash(name) & 0xFFFF)
    for trial in range(12):
        be, bv = random_restriction(graph, rng)
        res_l = legacy.search(0, banned_edges=be, banned_vertices=bv)
        res_c = csr.search(0, banned_edges=be, banned_vertices=bv)
        res_b = bulk.search(0, banned_edges=be, banned_vertices=bv)
        assert res_l.distances() == res_c.distances() == res_b.distances()
        for v in graph.vertices():
            assert res_l.parent(v) == res_c.parent(v) == res_b.parent(v)
            if res_l.reached(v):
                assert res_l.path(v) == res_c.path(v) == res_b.path(v)


@zoo_params()
def test_canonical_path_equivalence_targeted(name, graph):
    """Target-limited searches extract identical canonical paths."""
    legacy = LexShortestPaths(graph)
    csr = CSRLexShortestPaths(graph)
    bulk = forced_bulk_engine(graph)
    rng = random.Random(1 + (hash(name) & 0xFFFF))
    for trial in range(8):
        be, bv = random_restriction(graph, rng)
        full = legacy.search(0, banned_edges=be, banned_vertices=bv)
        for v in graph.vertices():
            if not full.reached(v):
                continue
            expect = legacy.canonical_path(
                0, v, banned_edges=be, banned_vertices=bv
            )
            assert csr.canonical_path(
                0, v, banned_edges=be, banned_vertices=bv
            ) == expect
            assert bulk.canonical_path(
                0, v, banned_edges=be, banned_vertices=bv
            ) == expect


@zoo_params()
def test_distance_oracle_equivalence(name, graph):
    """CSR + bulk oracles (memo, bidir, bulk sweeps) == legacy oracle."""
    new = DistanceOracle(graph)
    bulk = forced_bulk_oracle(graph)
    old = PythonDistanceOracle(graph)
    rng = random.Random(2 + (hash(name) & 0xFFFF))
    for trial in range(40):
        be, bv = random_restriction(graph, rng, forbid=())
        s = rng.randrange(graph.n)
        t = rng.randrange(graph.n)
        # point query twice: second hit exercises the memo cache
        assert new.distance(s, t, be, bv) == old.distance(s, t, be, bv)
        assert new.distance(s, t, be, bv) == old.distance(s, t, be, bv)
        assert bulk.distance(s, t, be, bv) == old.distance(s, t, be, bv)
        expect_vec = old.distances_from(s, be, bv)
        assert new.distances_from(s, be, bv) == expect_vec
        assert bulk.distances_from(s, be, bv) == expect_vec


@zoo_params()
def test_multi_source_batch_matches_per_source(name, graph):
    rng = random.Random(3 + (hash(name) & 0xFFFF))
    be, bv = random_restriction(graph, rng, forbid=())
    sources = list(graph.vertices())[:4]
    batch = multi_source_distances(graph, sources, be, bv)
    bulk_batch = forced_bulk_oracle(graph).multi_source_distances(
        sources, be, bv
    )
    old = PythonDistanceOracle(graph)
    for s, vec, bvec in zip(sources, batch, bulk_batch):
        expect = old.distances_from(s, be, bv)
        assert vec == expect
        assert bvec == expect


@needs_ckernel
@zoo_params()
def test_c_tier_engine_and_oracle_equivalence(name, graph):
    """The ``lex-c`` tier is bit-identical to the legacy reference.

    Engine searches must match the legacy engine observable-for-
    observable, and the C oracle's batch-first surface
    (``distances_bulk``, which routes through the C multi-pair /
    shared-sweep kernels) must agree element-for-element with per-pair
    legacy scalar queries.
    """
    legacy = LexShortestPaths(graph)
    eng = forced_c_engine(graph)
    oracle = forced_c_oracle(graph)
    old = PythonDistanceOracle(graph)
    rng = random.Random(7 + (hash(name) & 0xFFFF))
    for trial in range(10):
        be, bv = random_restriction(graph, rng)
        res_l = legacy.search(0, banned_edges=be, banned_vertices=bv)
        res_c = eng.search(0, banned_edges=be, banned_vertices=bv)
        assert res_l.distances() == res_c.distances()
        for v in graph.vertices():
            assert res_l.parent(v) == res_c.parent(v)
        pairs = [
            (rng.randrange(graph.n), rng.randrange(graph.n)) for _ in range(12)
        ]
        assert oracle.distances_bulk(pairs, be, bv) == [
            old.distance(s, t, be, bv) for s, t in pairs
        ]


@zoo_params()
def test_perturbed_csr_inner_loop_matches_lex_distances(name, graph):
    """The CSR-rewritten Dijkstra still yields hop-exact distances."""
    per = PerturbedShortestPaths(graph, seed=11).search(0)
    lex = CSRLexShortestPaths(graph).search(0)
    assert per.distances() == lex.distances()


class TestEngineContract:
    def test_registry_and_default(self):
        g = path_graph(4)
        assert isinstance(make_engine(g), CSRLexShortestPaths)
        assert isinstance(make_engine(g, "lex-csr"), CSRLexShortestPaths)
        assert isinstance(make_engine(g, "lex"), LexShortestPaths)
        assert isinstance(make_engine(g, "lex-bulk"), BulkLexShortestPaths)

    def test_bulk_engine_pairs_with_bulk_oracle(self):
        assert BulkLexShortestPaths.oracle_class is BulkDistanceOracle

    def test_c_engine_pairs_with_c_oracle(self):
        assert CLexShortestPaths.oracle_class is CDistanceOracle
        assert CDistanceOracle._PT_NS != BulkDistanceOracle._PT_NS

    @needs_ckernel
    def test_c_engine_registered_and_constructible(self):
        g = path_graph(4)
        eng = make_engine(g, "lex-c")
        assert isinstance(eng, CLexShortestPaths)
        assert eng.search(0).dist(3) == 3

    def test_c_engine_refuses_when_disabled(self, monkeypatch):
        """``lex-c`` is a guarantee: REPRO_C_KERNEL=off must make its
        construction fail loudly, never degrade silently."""
        monkeypatch.setenv("REPRO_C_KERNEL", "off")
        with pytest.raises(GraphError, match="disabled"):
            CLexShortestPaths(path_graph(4))
        with pytest.raises(GraphError, match="disabled"):
            CDistanceOracle(path_graph(4))

    def test_c_engine_refuses_when_kernel_broken(self, monkeypatch):
        from repro.core import ckernel

        monkeypatch.setattr(
            ckernel, "_load_state", (None, "simulated broken extension")
        )
        with pytest.raises(GraphError, match="simulated broken extension"):
            CLexShortestPaths(path_graph(4))

    def test_bulk_delegates_below_threshold(self):
        """On small graphs the bulk kernel hands off to the python
        kernel (and still answers correctly)."""
        g = path_graph(6)
        eng = make_engine(g, "lex-bulk")
        assert not eng._kernel.vectorized
        assert eng.search(0).dist(5) == 5

    def test_banned_source_rejected(self):
        g = path_graph(3)
        with pytest.raises(GraphError):
            CSRLexShortestPaths(g).search(0, banned_vertices=[0])

    def test_banned_source_rejected_bulk(self):
        g = path_graph(3)
        with pytest.raises(GraphError):
            forced_bulk_engine(g).search(0, banned_vertices=[0])

    def test_invalid_source_rejected(self):
        g = path_graph(3)
        with pytest.raises(GraphError):
            CSRLexShortestPaths(g).search(9)

    @pytest.mark.parametrize(
        "factory", [CSRLexShortestPaths, forced_bulk_engine], ids=["csr", "bulk"]
    )
    def test_search_memo_promotion(self, factory):
        """A repeated restriction with a deeper target is answered correctly
        (the cached target-stopped search must not serve it stale)."""
        g = path_graph(8)
        eng = factory(g)
        near = eng.search(0, banned_edges=[(5, 6)], target=2)
        assert near.dist(2) == 2
        far = eng.search(0, banned_edges=[(5, 6)], target=5)
        assert far.dist(5) == 5
        assert not far.reached(7)  # the ban really cuts
        again = eng.search(0, banned_edges=[(5, 6)])
        assert again.dist(5) == 5 and not again.reached(6)

    @pytest.mark.parametrize(
        "engine_factory,oracle_factory",
        [
            (CSRLexShortestPaths, DistanceOracle),
            (forced_bulk_engine, forced_bulk_oracle),
        ],
        ids=["csr", "bulk"],
    )
    def test_engine_sees_graph_mutation(self, engine_factory, oracle_factory):
        """Mutating the graph after engine/oracle construction must not
        serve stale snapshots or stale memo entries (the legacy default
        engine read adjacency live on every search)."""
        g = path_graph(4)
        eng = engine_factory(g)
        oracle = oracle_factory(g)
        assert eng.search(0).dist(3) == 3
        assert oracle.distance(0, 3) == 3
        g.add_edge(0, 3)
        if engine_factory is forced_bulk_engine:
            # The mutation retires the forced kernel with its snapshot;
            # re-force so the post-mutation asserts still exercise the
            # vectorized path (not the sub-threshold delegation).
            force_vectorized(g)
        assert eng.search(0).dist(3) == 1
        assert oracle.distance(0, 3) == 1
        assert oracle.distances_from(0) == [0, 1, 2, 1]
        if engine_factory is forced_bulk_engine:
            assert eng._kernel.vectorized  # the numpy path was re-tested

    @pytest.mark.parametrize(
        "factory", [CSRLexShortestPaths, forced_bulk_engine], ids=["csr", "bulk"]
    )
    def test_memo_results_stable_across_mixed_targets(self, factory):
        g = erdos_renyi(24, 0.15, seed=6)
        eng = factory(g)
        ref = LexShortestPaths(g)
        rng = random.Random(9)
        for _ in range(60):
            be, bv = random_restriction(g, rng)
            v = rng.randrange(1, g.n)
            res = eng.search(0, banned_edges=be, banned_vertices=bv, target=v)
            expect = ref.search(0, banned_edges=be, banned_vertices=bv, target=v)
            assert res.dist(v) == expect.dist(v)
            if expect.reached(v):
                assert res.path(v) == expect.path(v)

    def test_bulk_natural_vectorization_on_large_graph(self):
        """Above the size threshold the default-built bulk engine runs
        the numpy path (no forcing) and stays bit-identical."""
        g = erdos_renyi(600, 0.012, seed=13)
        bulk = BulkLexShortestPaths(g)
        assert bulk._kernel.vectorized
        csr = CSRLexShortestPaths(g)
        rng = random.Random(17)
        for _ in range(6):
            be, bv = random_restriction(g, rng)
            res_b = bulk.search(0, banned_edges=be, banned_vertices=bv)
            res_c = csr.search(0, banned_edges=be, banned_vertices=bv)
            assert res_b.distances() == res_c.distances()
            assert [res_b.parent(v) for v in range(g.n)] == [
                res_c.parent(v) for v in range(g.n)
            ]


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=18),
    p=st.floats(min_value=0.1, max_value=0.5),
    seed=st.integers(min_value=0, max_value=10_000),
    fault_seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_random_graph_random_faults_equivalence(n, p, seed, fault_seed):
    g = erdos_renyi(n, p, seed=seed)
    rng = random.Random(fault_seed)
    be, bv = random_restriction(g, rng)
    res_l = LexShortestPaths(g).search(0, banned_edges=be, banned_vertices=bv)
    res_c = CSRLexShortestPaths(g).search(0, banned_edges=be, banned_vertices=bv)
    res_b = forced_bulk_engine(g).search(0, banned_edges=be, banned_vertices=bv)
    assert res_l.distances() == res_c.distances() == res_b.distances()
    for v in range(g.n):
        assert res_l.parent(v) == res_c.parent(v) == res_b.parent(v)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=18),
    p=st.floats(min_value=0.1, max_value=0.5),
    seed=st.integers(min_value=0, max_value=10_000),
    fault_seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_bidirectional_distance_equivalence(n, p, seed, fault_seed):
    g = erdos_renyi(n, p, seed=seed)
    rng = random.Random(fault_seed)
    be, bv = random_restriction(g, rng, forbid=())
    new = DistanceOracle(g)
    old = PythonDistanceOracle(g)
    for s in range(min(g.n, 4)):
        for t in range(g.n):
            assert new.distance(s, t, be, bv) == old.distance(s, t, be, bv)
