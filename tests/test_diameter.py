"""Tests for FT-diameter and the Observation 1.6 bound."""

from repro.core.canonical import DistanceOracle, UNREACHED
from repro.ftbfs import (
    build_generic_ftbfs,
    ft_diameter,
    observation_1_6_bound,
)
from repro.generators import complete_graph, cycle_graph, erdos_renyi, path_graph


def test_ft_diameter_f1_is_eccentricity():
    """f=1 allows no faults (|F| <= 0): D_1 = plain BFS depth."""
    g = path_graph(6)
    assert ft_diameter(g, 0, 1) == 5
    assert ft_diameter(g, 2, 1) == 3


def test_ft_diameter_cycle():
    g = cycle_graph(8)
    assert ft_diameter(g, 0, 1) == 4
    # one failure can force the long way round
    assert ft_diameter(g, 0, 2) == 7


def test_ft_diameter_ignores_disconnection():
    g = path_graph(4)
    # every single fault disconnects something; remaining distances small
    assert ft_diameter(g, 0, 2) == 3


def test_ft_diameter_complete():
    g = complete_graph(6)
    assert ft_diameter(g, 0, 1) == 1
    assert ft_diameter(g, 0, 2) == 2


def test_ft_diameter_brute_force_agreement():
    g = erdos_renyi(10, 0.3, seed=3)
    oracle = DistanceOracle(g)
    best = max(d for d in oracle.distances_from(0) if d != UNREACHED)
    for e in sorted(g.edges()):
        ds = [d for d in oracle.distances_from(0, banned_edges=(e,)) if d != UNREACHED]
        best = max(best, max(ds))
    assert ft_diameter(g, 0, 2) == best


def test_observation_1_6_bound_holds():
    """|H_generic| <= D_f^f * n on small dense graphs (Obs. 1.6)."""
    for seed in range(3):
        g = erdos_renyi(10, 0.5, seed=seed)
        h = build_generic_ftbfs(g, 0, 2)
        assert h.size <= observation_1_6_bound(g, 0, 2)


def test_observation_bound_value():
    g = complete_graph(5)
    assert observation_1_6_bound(g, 0, 2) == ft_diameter(g, 0, 2) ** 2 * 5
