"""Tests for the analysis toolkit (censuses and scaling fits)."""

import math

import pytest

from repro.analysis import (
    PowerLawFit,
    detour_census,
    fit_power_law,
    format_table,
    normalized_series,
    path_class_census,
    per_vertex_new_edges,
)
from repro.ftbfs import build_cons2ftbfs
from repro.generators import erdos_renyi, tree_plus_chords
from repro.replacement.classify import PathClass
from repro.replacement.detours import DetourConfiguration


class TestPowerLaw:
    def test_exact_fit(self):
        xs = [10, 20, 40, 80]
        ys = [x ** 1.5 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.alpha == pytest.approx(1.5)
        assert fit.c == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_constant_factor(self):
        xs = [10, 100, 1000]
        ys = [7 * x ** 2 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.alpha == pytest.approx(2.0)
        assert fit.c == pytest.approx(7.0)

    def test_predict(self):
        fit = fit_power_law([1, 2, 4], [3, 6, 12])
        assert fit.predict(8) == pytest.approx(24.0)

    def test_noise_tolerated(self):
        xs = [16, 32, 64, 128]
        ys = [x ** 1.66 * (1 + 0.05 * ((i % 2) * 2 - 1)) for i, x in enumerate(xs)]
        fit = fit_power_law(xs, ys)
        assert 1.5 < fit.alpha < 1.8

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_power_law([10], [100])
        with pytest.raises(ValueError):
            fit_power_law([10, 10], [100, 200])

    def test_nonpositive_filtered(self):
        fit = fit_power_law([0, 10, 20], [5, 10, 20])
        assert fit.alpha == pytest.approx(1.0)

    def test_repr(self):
        fit = fit_power_law([1, 2], [1, 2])
        assert "alpha" in repr(fit)

    def test_normalized_series(self):
        series = normalized_series([4, 9], [8, 27], 1.5)
        assert series == pytest.approx([1.0, 1.0])


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bbb"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "333" in lines[3]


class TestCensuses:
    @pytest.fixture(scope="class")
    def structure(self):
        g = tree_plus_chords(20, 10, seed=7)
        return build_cons2ftbfs(g, 0, keep_records=True)

    def test_detour_census_keys(self, structure):
        census = detour_census(structure)
        assert set(census) == set(DetourConfiguration)
        assert all(v >= 0 for v in census.values())

    def test_path_class_census_matches_new_edges(self, structure):
        census = path_class_census(structure)
        assert set(census) == set(PathClass)
        total_classified = sum(census.values())
        # each new-ending record corresponds to one classified path
        expected = sum(
            len(rec.pipi_records) + len(rec.new_ending)
            for rec in structure.stats["records"]
        )
        assert total_classified == expected

    def test_per_vertex_new_edges(self, structure):
        per_v = per_vertex_new_edges(structure)
        assert per_v == structure.stats["new_edges_per_vertex"]
        per_v[0] = 999  # our copy, not the stats dict
        assert structure.stats["new_edges_per_vertex"].get(0) != 999

    def test_census_requires_records(self):
        g = erdos_renyi(10, 0.3, seed=1)
        h = build_cons2ftbfs(g, 0)
        with pytest.raises(ValueError):
            detour_census(h)
        with pytest.raises(ValueError):
            path_class_census(h)
