"""Tests for the distance sensitivity oracles."""

import pytest

from repro.core.canonical import INF, DistanceOracle
from repro.core.errors import GraphError
from repro.ftbfs import build_cons2ftbfs, build_single_ftbfs
from repro.ftbfs.sensitivity import (
    DualFaultDistanceOracle,
    SingleFaultDistanceOracle,
)
from repro.generators import erdos_renyi, path_graph

from tests.zoo import zoo_params


@zoo_params()
def test_single_fault_oracle_exhaustive(name, graph):
    oracle = SingleFaultDistanceOracle(graph, 0)
    truth = DistanceOracle(graph)
    for e in sorted(graph.edges()):
        for v in graph.vertices():
            assert oracle.distance(v, e) == truth.distance(0, v, banned_edges=(e,))


def test_single_fault_oracle_fault_free():
    g = erdos_renyi(12, 0.3, seed=1)
    oracle = SingleFaultDistanceOracle(g, 0)
    truth = DistanceOracle(g)
    for v in range(g.n):
        assert oracle.distance(v) == truth.distance(0, v)


def test_single_fault_oracle_bridge():
    g = path_graph(5)
    oracle = SingleFaultDistanceOracle(g, 0)
    assert oracle.distance(4, (1, 2)) == INF
    assert oracle.distance(1, (1, 2)) == 1


def test_single_fault_oracle_table_count():
    g = erdos_renyi(15, 0.3, seed=2)
    oracle = SingleFaultDistanceOracle(g, 0)
    assert oracle.preprocessing_tables == 14  # tree edges


def test_single_fault_oracle_invalid_vertex():
    g = path_graph(3)
    oracle = SingleFaultDistanceOracle(g, 0)
    with pytest.raises(GraphError):
        oracle.distance(7)


@pytest.mark.parametrize("seed", [3, 4])
def test_dual_fault_oracle_exhaustive(seed):
    g = erdos_renyi(10, 0.3, seed=seed)
    oracle = DualFaultDistanceOracle(g, 0)
    truth = DistanceOracle(g)
    edges = sorted(g.edges())
    for i, e1 in enumerate(edges):
        for e2 in edges[i + 1 :]:
            for v in range(g.n):
                want = truth.distance(0, v, banned_edges=(e1, e2))
                assert oracle.distance(v, (e1, e2)) == want


def test_dual_fault_oracle_accepts_prebuilt():
    g = erdos_renyi(12, 0.25, seed=5)
    h = build_cons2ftbfs(g, 0)
    oracle = DualFaultDistanceOracle(g, 0, structure=h)
    assert oracle.structure_size == h.size
    truth = DistanceOracle(g)
    edges = sorted(g.edges())[:4]
    assert oracle.distance(5, (edges[0], edges[1])) == truth.distance(
        0, 5, banned_edges=edges[:2]
    )


def test_dual_fault_oracle_rejects_weak_structure():
    g = erdos_renyi(10, 0.3, seed=6)
    h1 = build_single_ftbfs(g, 0)
    with pytest.raises(GraphError):
        DualFaultDistanceOracle(g, 0, structure=h1)


def test_dual_fault_oracle_rejects_wrong_source():
    g = erdos_renyi(10, 0.3, seed=7)
    h = build_cons2ftbfs(g, 0)
    with pytest.raises(GraphError):
        DualFaultDistanceOracle(g, 3, structure=h)


def test_dual_fault_oracle_budget():
    g = erdos_renyi(10, 0.3, seed=8)
    oracle = DualFaultDistanceOracle(g, 0)
    edges = sorted(g.edges())
    with pytest.raises(GraphError):
        oracle.distance(2, edges[:3])


def test_dual_fault_oracle_batch():
    g = erdos_renyi(10, 0.3, seed=9)
    oracle = DualFaultDistanceOracle(g, 0)
    truth = DistanceOracle(g)
    edges = sorted(g.edges())
    queries = [(3, ()), (4, (edges[0],)), (5, (edges[0], edges[1]))]
    got = oracle.batch(queries)
    want = [truth.distance(0, v, banned_edges=f) for v, f in queries]
    assert got == want
