"""Tests for the workload graph generators."""

import pytest

from repro.core.errors import GraphError
from repro.generators import (
    barbell_graph,
    complete_bipartite,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    gnm_random,
    grid_graph,
    hypercube_graph,
    path_graph,
    random_regularish,
    random_tree,
    torus_graph,
    tree_plus_chords,
)


class TestErdosRenyi:
    def test_deterministic(self):
        assert erdos_renyi(20, 0.2, seed=1) == erdos_renyi(20, 0.2, seed=1)

    def test_seed_changes_graph(self):
        assert erdos_renyi(20, 0.2, seed=1) != erdos_renyi(20, 0.2, seed=2)

    def test_connected_by_default(self):
        for seed in range(5):
            assert erdos_renyi(30, 0.02, seed=seed).is_connected()

    def test_not_forced_connected(self):
        g = erdos_renyi(40, 0.0, seed=0, ensure_connected=False)
        assert g.m == 0

    def test_p_bounds(self):
        with pytest.raises(GraphError):
            erdos_renyi(5, 1.5)

    def test_p_one_is_complete(self):
        g = erdos_renyi(6, 1.0, seed=0)
        assert g.m == 15


class TestGnm:
    def test_edge_count(self):
        g = gnm_random(20, 40, seed=3)
        assert g.m >= 40  # spanning tree may exceed request; never below
        assert g.is_connected()

    def test_too_many_edges(self):
        with pytest.raises(GraphError):
            gnm_random(4, 10)


class TestTrees:
    def test_random_tree_edge_count(self):
        g = random_tree(25, seed=2)
        assert g.m == 24
        assert g.is_connected()

    def test_tree_plus_chords(self):
        g = tree_plus_chords(20, 6, seed=1)
        assert g.m >= 19
        assert g.is_connected()


class TestStructured:
    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.n == 12
        assert g.m == 3 * 3 + 2 * 4  # horizontal + vertical
        with pytest.raises(GraphError):
            grid_graph(0, 3)

    def test_torus(self):
        g = torus_graph(3, 3)
        assert all(g.degree(v) == 4 for v in g.vertices())
        with pytest.raises(GraphError):
            torus_graph(2, 5)

    def test_cycle(self):
        g = cycle_graph(7)
        assert g.m == 7
        assert all(g.degree(v) == 2 for v in g.vertices())
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_path(self):
        g = path_graph(5)
        assert g.m == 4

    def test_complete(self):
        g = complete_graph(6)
        assert g.m == 15

    def test_complete_bipartite(self):
        g = complete_bipartite(3, 4)
        assert g.m == 12
        assert all(g.degree(v) == 4 for v in range(3))

    def test_hypercube(self):
        g = hypercube_graph(4)
        assert g.n == 16
        assert all(g.degree(v) == 4 for v in g.vertices())
        with pytest.raises(GraphError):
            hypercube_graph(0)

    def test_barbell(self):
        g = barbell_graph(4, 3)
        assert g.is_connected()
        assert g.n == 2 * 4 + 2
        with pytest.raises(GraphError):
            barbell_graph(1, 1)

    def test_regularish(self):
        g = random_regularish(20, 4, seed=5)
        assert g.is_connected()
        assert max(g.degree(v) for v in g.vertices()) <= 5
        with pytest.raises(GraphError):
            random_regularish(5, 1)
