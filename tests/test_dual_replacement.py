"""Tests for dual-failure replacement path selection (Steps 2 & 3)."""

import pytest

from repro.core.canonical import INF
from repro.core.errors import ConstructionError
from repro.core.graph import normalize_edge
from repro.generators import erdos_renyi, tree_plus_chords
from repro.replacement.base import SourceContext
from repro.replacement.dual import (
    earliest_detour_divergence,
    earliest_pi_divergence,
    pid_replacement,
    pipi_replacement,
    plain_dual_replacement,
)
from repro.replacement.single import all_single_replacements

from tests.zoo import zoo_params


def iter_pipi_cases(ctx, v):
    pi_path = ctx.pi(v)
    pi_edges = [normalize_edge(a, b) for a, b in pi_path.directed_edges()]
    singles = all_single_replacements(ctx, v)
    for i in range(len(pi_edges)):
        if singles[pi_edges[i]] is None:
            continue
        for j in range(i + 1, len(pi_edges)):
            if singles[pi_edges[j]] is None:
                continue
            yield singles[pi_edges[i]], singles[pi_edges[j]]


def iter_pid_cases(ctx, v):
    singles = all_single_replacements(ctx, v)
    for rep in singles.values():
        if rep is None:
            continue
        for a, b in rep.detour.directed_edges():
            yield rep, normalize_edge(a, b)


@zoo_params()
def test_pipi_paths_are_optimal(name, graph):
    ctx = SourceContext(graph, 0)
    for v in ctx.tree.vertices():
        if v == 0:
            continue
        for upper, lower in iter_pipi_cases(ctx, v):
            rec = pipi_replacement(ctx, v, upper, lower)
            faults = (upper.fault, lower.fault)
            true = ctx.distance(v, banned_edges=faults)
            if rec is None:
                assert true == INF
                continue
            assert len(rec.path) == true
            assert not (set(faults) & rec.path.edge_set())
            assert rec.kind == "pipi"


@zoo_params()
def test_pid_paths_are_optimal(name, graph):
    ctx = SourceContext(graph, 0)
    for v in ctx.tree.vertices():
        if v == 0:
            continue
        for rep, t in iter_pid_cases(ctx, v):
            rec = pid_replacement(ctx, v, rep, t)
            faults = (rep.fault, t)
            true = ctx.distance(v, banned_edges=faults)
            if rec is None:
                assert true == INF
                continue
            assert len(rec.path) == true
            assert not (set(faults) & rec.path.edge_set())
            assert rec.kind == "pid"


@zoo_params()
def test_no_fallbacks_for_new_ending_pairs(name, graph):
    """Lemma 3.1's guarantee: the structured selection always succeeds
    for pairs that are *new-ending* with respect to the algorithm's
    state (pairs already satisfied by ``G_{τ-1}(v)`` may legitimately
    lack a ``G_D(w_ℓ)``-shaped shortest path and fall back — the
    algorithm never asks for them)."""
    from repro.ftbfs.cons2ftbfs import build_cons2ftbfs

    h = build_cons2ftbfs(graph, 0)
    assert h.stats["fallbacks"] == 0


@zoo_params()
def test_pid_fallback_paths_still_optimal(name, graph):
    """Even direct calls on non-new-ending pairs return optimal paths."""
    ctx = SourceContext(graph, 0)
    for v in ctx.tree.vertices():
        if v == 0:
            continue
        for rep, t in iter_pid_cases(ctx, v):
            rec = pid_replacement(ctx, v, rep, t)
            if rec is not None and rec.fallback:
                true = ctx.distance(v, banned_edges=(rep.fault, t))
                assert len(rec.path) == true


def test_pid_divergence_preferences(medium_er):
    """b(P) is the highest feasible divergence; Claim 3.15(1)."""
    ctx = SourceContext(medium_er, 0)
    checked = 0
    for v in list(ctx.tree.vertices())[1:12]:
        pi_path = ctx.pi(v)
        for rep, t in iter_pid_cases(ctx, v):
            rec = pid_replacement(ctx, v, rep, t)
            if rec is None or rec.fallback:
                continue
            b = rec.pi_divergence
            assert b is not None
            upper_index = min(
                pi_path.position(rep.fault[0]), pi_path.position(rep.fault[1])
            )
            k = earliest_pi_divergence(
                ctx, v, (rep.fault, t), upper_index
            )
            if k is not None:
                assert pi_path.position(b) <= k or pi_path.position(b) == k
                checked += 1
    assert checked > 0


def test_pid_linear_matches_binary(medium_er):
    ctx = SourceContext(medium_er, 0)
    import itertools

    cases = 0
    for v in list(ctx.tree.vertices())[1:8]:
        pi_path = ctx.pi(v)
        for rep, t in itertools.islice(iter_pid_cases(ctx, v), 6):
            faults = (rep.fault, t)
            upper_index = min(
                pi_path.position(rep.fault[0]), pi_path.position(rep.fault[1])
            )
            fast = earliest_pi_divergence(ctx, v, faults, upper_index)
            slow = earliest_pi_divergence(
                ctx, v, faults, upper_index, linear=True
            )
            assert fast == slow
            cases += 1
    assert cases > 0


def test_detour_divergence_linear_matches_binary(medium_er):
    ctx = SourceContext(medium_er, 0)
    cases = 0
    for v in list(ctx.tree.vertices())[1:10]:
        pi_path = ctx.pi(v)
        for rep, t in iter_pid_cases(ctx, v):
            faults = (rep.fault, t)
            target = ctx.distance(v, banned_edges=faults)
            if target == INF:
                continue
            pi_ban = ctx.pi_segment_interior_ban(pi_path, rep.x, v)
            fast = earliest_detour_divergence(
                ctx, v, faults, rep.detour, t, target, pi_ban
            )
            slow = earliest_detour_divergence(
                ctx, v, faults, rep.detour, t, target, pi_ban, linear=True
            )
            assert fast == slow
            cases += 1
    assert cases > 0


def test_pid_second_fault_off_detour_rejected(small_er):
    ctx = SourceContext(small_er, 0)
    for v in list(ctx.tree.vertices())[1:]:
        singles = all_single_replacements(ctx, v)
        reps = [r for r in singles.values() if r is not None]
        if not reps:
            continue
        rep = reps[0]
        off = next(
            e
            for e in sorted(small_er.edges())
            if not rep.detour.has_edge(*e)
        )
        with pytest.raises(ConstructionError):
            pid_replacement(ctx, v, rep, off)
        return
    pytest.skip("no usable target")


def test_plain_dual_replacement(small_er):
    ctx = SourceContext(small_er, 0)
    edges = sorted(small_er.edges())
    p = plain_dual_replacement(ctx, 5, (edges[0], edges[1]))
    true = ctx.distance(5, banned_edges=edges[:2])
    if p is None:
        assert true == INF
    else:
        assert len(p) == true


def test_pipi_composed_flag_consistency(chordal_tree):
    """When the composed candidate is used it must be optimal (re-check)."""
    ctx = SourceContext(chordal_tree, 0)
    composed_seen = 0
    for v in list(ctx.tree.vertices())[1:]:
        for upper, lower in iter_pipi_cases(ctx, v):
            rec = pipi_replacement(ctx, v, upper, lower)
            if rec is None:
                continue
            if rec.composed:
                composed_seen += 1
                true = ctx.distance(v, banned_edges=rec.faults)
                assert len(rec.path) == true
    # composed candidates are graph-dependent; just record that the flag
    # machinery ran without violating optimality.
    assert composed_seen >= 0
