"""Property tests for the batched point-query pipeline.

``PointQueryBatch`` must be *bit-identical* to per-pair scalar point
queries — same raw hops, same ``inf`` convention — across every oracle
family (legacy python, CSR, forced-vectorized bulk), every executor
strategy (snapshot-cache hits, tree-repair, shared sweeps, cross-query
multi-pair kernel, pooled scalar fallback), and the fault-set grouping
edge cases: empty batches, duplicate pairs, shared and disjoint fault
sets, vertex bans, disconnected and out-of-range targets.  The
converted builders must produce byte-identical structures with
batching on and off.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ckernel
from repro.core.bulk import BulkCSRKernel
from repro.core.canonical import (
    INF,
    BulkDistanceOracle,
    CDistanceOracle,
    DistanceOracle,
    PythonDistanceOracle,
)
from repro.core.ckernel import c_kernel_available
from repro.core.csr import csr_of
from repro.core.query_batch import (
    LegacyQueryBatch,
    QueryHandle,
    _TreeRepair,
)
from repro.core.snapshot_cache import shared_cache
from repro.ftbfs.cons2ftbfs import build_cons2ftbfs, feasibility_probes
from repro.generators import erdos_renyi, path_graph, tree_plus_chords
from repro.replacement.base import SourceContext

from tests.zoo import zoo_params


#: C-tier cases are skipped (not silently dropped) where the compiled
#: kernel cannot load; the fallback behavior itself is tested below
#: with a simulated broken extension, so compiler-less hosts still
#: exercise the degradation path.
needs_ckernel = pytest.mark.skipif(
    not c_kernel_available(), reason="compiled C kernel unavailable"
)


def forced_bulk_oracle(graph):
    """A bulk oracle whose kernel always takes the vectorized path."""
    csr = csr_of(graph)
    csr._bulk = BulkCSRKernel(csr, min_bulk_n=0)
    return BulkDistanceOracle(graph)


def forced_c_oracle(graph):
    """A C-tier oracle over the forced vectorized kernel."""
    csr = csr_of(graph)
    csr._bulk = BulkCSRKernel(csr, min_bulk_n=0)
    return CDistanceOracle(graph)


def oracle_families(graph):
    families = [
        ("python", PythonDistanceOracle(graph)),
        ("csr", DistanceOracle(graph)),
        ("bulk", forced_bulk_oracle(graph)),
    ]
    if c_kernel_available():
        families.append(("c", forced_c_oracle(graph)))
    return families


def random_requests(graph, rng, count, max_edges=3, max_vertices=2):
    edges = sorted(graph.edges())
    out = []
    for _ in range(count):
        s = rng.randrange(graph.n)
        t = rng.randrange(graph.n + 2)  # sometimes out of range
        be = tuple(
            rng.sample(edges, k=min(len(edges), rng.randrange(0, max_edges + 1)))
        )
        bv = tuple(rng.sample(range(graph.n), k=rng.randrange(0, max_vertices + 1)))
        out.append((s, t, be, bv))
    return out


@zoo_params()
def test_batch_matches_scalar_across_families(name, graph):
    """Batch answers == per-pair scalar answers, all three families."""
    reference = PythonDistanceOracle(graph)
    rng = random.Random(hash(name) & 0xFFFF)
    requests = random_requests(graph, rng, 40)
    expected = [reference.distance(*req) for req in requests]
    for family, oracle in oracle_families(graph):
        batch = oracle.batch()
        handles = [batch.add(*req) for req in requests]
        shared_cache().clear()
        batch.execute()
        got = [h.distance for h in handles]
        assert got == expected, family


@zoo_params()
def test_distances_bulk_matches_distance(name, graph):
    """distances_bulk == element-wise distance for one shared fault set."""
    rng = random.Random(1 + (hash(name) & 0xFFFF))
    edges = sorted(graph.edges())
    for trial in range(6):
        faults = tuple(
            rng.sample(edges, k=min(len(edges), rng.randrange(0, 3)))
        )
        pairs = [
            (rng.randrange(graph.n), rng.randrange(graph.n)) for _ in range(15)
        ]
        for family, oracle in oracle_families(graph):
            shared_cache().clear()
            want = [oracle.distance(s, t, faults) for s, t in pairs]
            shared_cache().clear()
            assert oracle.distances_bulk(pairs, faults) == want, family


def test_empty_batch_and_reuse():
    g = erdos_renyi(12, 0.3, seed=5)
    oracle = DistanceOracle(g)
    batch = oracle.batch()
    assert batch.execute() == []  # empty batch is a no-op
    h1 = batch.add(0, 3)
    batch.execute()
    first = h1.hops
    # the batch is reusable; earlier handles stay valid
    h2 = batch.add(0, 3, ((0, 1),))
    batch.execute()
    assert h1.hops == first
    assert h2.distance == oracle.distance(0, 3, ((0, 1),))


def test_duplicate_pairs_resolve_once_and_agree():
    g = erdos_renyi(20, 0.2, seed=8)
    oracle = DistanceOracle(g)
    edges = sorted(g.edges())
    batch = oracle.batch()
    f = (edges[0], edges[3])
    handles = [batch.add(0, 9, f) for _ in range(7)]
    # same restriction expressed in a different edge order / with an
    # unknown edge appended must land on the same dedupe slot
    handles.append(batch.add(0, 9, (edges[3], edges[0])))
    handles.append(batch.add(0, 9, (edges[0], edges[3], (91, 92))))
    shared_cache().clear()
    batch.execute()
    assert batch.stats["unique"] == 1
    assert len({h.hops for h in handles}) == 1
    assert handles[0].distance == oracle.distance(0, 9, f)


def test_disconnected_and_out_of_range_targets():
    g = path_graph(6)
    for family, oracle in oracle_families(g):
        batch = oracle.batch()
        cut = batch.add(0, 5, ((2, 3),))  # severs the path
        beyond = batch.add(0, 11)  # no such vertex
        banned = batch.add(0, 4, (), (4,))  # target vertex-banned
        self_banned = batch.add(3, 3, (), (3,))
        batch.execute()
        assert cut.hops == -1 and cut.distance == INF
        assert beyond.hops == -1
        assert banned.hops == -1
        assert self_banned.hops == -1, family


def test_unexecuted_handle_raises():
    g = path_graph(4)
    batch = DistanceOracle(g).batch()
    h = batch.add(0, 2)
    with pytest.raises(RuntimeError):
        h.distance
    assert QueryHandle.resolved(3).distance == 3


def test_batch_results_enter_the_shared_point_memo():
    g = erdos_renyi(18, 0.25, seed=11)
    oracle = DistanceOracle(g)
    shared_cache().clear()
    batch = oracle.batch()
    h = batch.add(1, 7, ((1, 2),))
    batch.execute()
    # the scalar path must now answer from the same memo
    before = shared_cache().hits
    assert oracle.distance(1, 7, ((1, 2),)) == h.distance
    assert shared_cache().hits == before + 1
    # and vice versa: scalar-seeded entries serve the batch
    batch2 = oracle.batch()
    batch2.add(1, 7, ((1, 2),))
    batch2.execute()
    assert batch2.stats["cached"] == 1


def test_grouping_stats_cover_every_strategy():
    """Grouped / repaired / paired counters add up to the unique misses."""
    g = erdos_renyi(80, 0.06, seed=13)
    oracle = forced_bulk_oracle(g)
    rng = random.Random(99)
    edges = sorted(g.edges())
    batch = oracle.batch()
    n_added = 0
    for _ in range(12):  # grouped: one fault set, many targets
        f = tuple(rng.sample(edges, k=2))
        for t in rng.sample(range(g.n), k=20):
            batch.add(0, t, f)
            n_added += 1
    shared_cache().clear()
    batch.execute()
    st = batch.stats
    assert st["queries"] == n_added
    assert st["cached"] + st["repaired"] + st["swept"] + st["paired"] <= st["unique"]
    answered = st["cached"] + st["repaired"] + st["swept"] + st["paired"]
    # everything not counted above ran the pooled scalar fallback; spot
    # check correctness of a sample against the scalar oracle either way
    assert answered >= 0
    ref = DistanceOracle(g)
    probe_f = tuple(rng.sample(edges, k=2))
    pairs = [(0, t) for t in range(0, g.n, 7)]
    shared_cache().clear()
    assert oracle.distances_bulk(pairs, probe_f) == [
        ref.distance(s, t, probe_f) for s, t in pairs
    ]


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=28),
    p=st.floats(min_value=0.1, max_value=0.6),
    seed=st.integers(min_value=0, max_value=999),
)
def test_forced_vectorized_batches_match_scalar(n, p, seed):
    """Hypothesis sweep: forced-vectorized batch == legacy per-pair."""
    g = erdos_renyi(n, p, seed=seed)
    reference = PythonDistanceOracle(g)
    oracle = forced_bulk_oracle(g)
    rng = random.Random(seed)
    requests = random_requests(g, rng, 25)
    batch = oracle.batch()
    handles = [batch.add(*req) for req in requests]
    shared_cache().clear()
    batch.execute()
    for req, handle in zip(requests, handles):
        assert handle.distance == reference.distance(*req)


def test_multi_target_dists_matches_bidir(monkeypatch):
    # C off: this test exercises the *numpy* shared-sweep path, which
    # auto-dispatch would otherwise route to the C kernel.
    monkeypatch.setenv("REPRO_C_KERNEL", "off")
    g = erdos_renyi(40, 0.12, seed=21)
    csr = csr_of(g)
    kernel = BulkCSRKernel(csr, min_bulk_n=0)
    edges = sorted(g.edges())
    rng = random.Random(7)
    for trial in range(10):
        eids = csr.resolve_edge_ids(rng.sample(edges, k=rng.randrange(0, 4)))
        targets = rng.sample(range(g.n), k=12)
        ban = kernel.stamp_edge_ids(eids, [])
        got = kernel.multi_target_dists(0, targets, ban)
        for t, d in zip(targets, got):
            ban2 = csr.stamp_edge_ids(eids, [])
            assert d == csr.bidir_distance(0, t, ban2)


@pytest.mark.parametrize("labels", ["dense", "compact", "auto"])
def test_multi_pair_label_kernels_match_bidir(labels, monkeypatch):
    """Both multi-pair label representations (dense scatter tables and
    compact unified-label pools) are exact, under every ban shape."""
    monkeypatch.setenv("REPRO_PAIR_LABELS", labels)
    # C off: the label representations under test are the numpy paths.
    monkeypatch.setenv("REPRO_C_KERNEL", "off")
    for g in (
        path_graph(40),
        erdos_renyi(60, 0.08, seed=2),
        tree_plus_chords(90, 35, seed=4),
    ):
        csr = csr_of(g)
        kernel = BulkCSRKernel(csr, min_bulk_n=0)
        edges = sorted(g.edges())
        rng = random.Random(labels == "dense" and 5 or 6)
        queries = []
        for _ in range(90):
            s = rng.randrange(g.n)
            t = rng.randrange(g.n)
            eids = sorted(
                csr.resolve_edge_ids(rng.sample(edges, k=rng.randrange(0, 4)))
            )
            verts = sorted(rng.sample(range(g.n), k=rng.randrange(0, 2)))
            queries.append((s, t, eids, verts))
        got = kernel.multi_pair_dists(queries)
        for (s, t, eids, verts), d in zip(queries, got):
            ban = csr.stamp_edge_ids(eids, verts)
            assert d == csr.bidir_distance(s, t, ban), (labels, g.n)


def test_multi_pair_dists_matches_bidir_including_cutover(monkeypatch):
    # path graphs force long distances, exercising the lock-step tail
    # cutover to the scalar kernel (a numpy-path mechanism: C off)
    monkeypatch.setenv("REPRO_C_KERNEL", "off")
    for g in (path_graph(40), erdos_renyi(60, 0.08, seed=2)):
        csr = csr_of(g)
        kernel = BulkCSRKernel(csr, min_bulk_n=0)
        edges = sorted(g.edges())
        rng = random.Random(g.n)
        queries = []
        for _ in range(70):
            s = rng.randrange(g.n)
            t = rng.randrange(g.n)
            eids = sorted(
                csr.resolve_edge_ids(rng.sample(edges, k=rng.randrange(0, 3)))
            )
            verts = sorted(rng.sample(range(g.n), k=rng.randrange(0, 2)))
            queries.append((s, t, eids, verts))
        got = kernel.multi_pair_dists(queries)
        for (s, t, eids, verts), d in zip(queries, got):
            ban = csr.stamp_edge_ids(eids, verts)
            assert d == csr.bidir_distance(s, t, ban)


def _mixed_queries(g, csr, rng, count):
    """Random (source, target, eids, verts) resolved-id queries."""
    edges = sorted(g.edges())
    queries = []
    for _ in range(count):
        s = rng.randrange(g.n)
        t = rng.randrange(g.n)
        eids = sorted(
            csr.resolve_edge_ids(rng.sample(edges, k=rng.randrange(0, 4)))
        )
        verts = sorted(rng.sample(range(g.n), k=rng.randrange(0, 2)))
        queries.append((s, t, eids, verts))
    return queries


@needs_ckernel
def test_c_kernel_multi_pair_and_targets_match_scalar():
    """The C batch kernels are bit-identical to the scalar reference
    across ban shapes, long-distance pairs, and shared sweeps."""
    for g in (
        path_graph(40),
        erdos_renyi(60, 0.08, seed=2),
        tree_plus_chords(90, 35, seed=4),
    ):
        csr = csr_of(g)
        kernel = BulkCSRKernel(csr, min_bulk_n=0)
        assert kernel.c_active
        rng = random.Random(g.n)
        queries = _mixed_queries(g, csr, rng, 90)
        got = kernel.multi_pair_dists(queries)
        assert kernel.dispatch_stats["pairs_c"] == 90  # C really served
        for (s, t, eids, verts), d in zip(queries, got):
            ban = csr.stamp_edge_ids(eids, verts)
            assert d == csr.bidir_distance(s, t, ban), (g.n, s, t)
        edges = sorted(g.edges())
        for _ in range(8):
            eids = csr.resolve_edge_ids(rng.sample(edges, k=rng.randrange(0, 4)))
            verts = rng.sample(range(1, g.n), k=rng.randrange(0, 2))
            targets = rng.sample(range(g.n), k=10) + [0]  # incl. source
            ban = kernel.stamp_edge_ids(eids, verts)
            got = kernel.multi_target_dists(0, targets, ban)
            for t, d in zip(targets, got):
                ban2 = csr.stamp_edge_ids(eids, verts)
                assert d == csr.bidir_distance(0, t, ban2), (g.n, t)
        assert kernel.dispatch_stats["sweeps_c"] > 0


def test_c_kernel_fallback_lands_on_numpy(monkeypatch):
    """A missing/broken extension silently degrades to the numpy kernel
    with identical output (the pure-python-install guarantee)."""
    g = erdos_renyi(60, 0.08, seed=2)
    csr = csr_of(g)
    rng = random.Random(11)
    queries = _mixed_queries(g, csr, rng, 60)
    want = []
    for s, t, eids, verts in queries:
        ban = csr.stamp_edge_ids(eids, verts)
        want.append(csr.bidir_distance(s, t, ban))
    # Simulate the load having failed (no compiler, broken .so, ...)
    # under the default dispatch mode (CI's tier guard exports
    # REPRO_C_KERNEL=on, under which a broken load raises by design —
    # the silent-degradation contract under test here is auto's).
    monkeypatch.setenv("REPRO_C_KERNEL", "auto")
    monkeypatch.setattr(
        ckernel, "_load_state", (None, "simulated missing extension")
    )
    kernel = BulkCSRKernel(csr, min_bulk_n=0)
    assert not kernel.c_active
    assert kernel.multi_pair_dists(queries) == want
    assert kernel.dispatch_stats["pairs_c"] == 0
    # the tier counters partition the batch: numpy labels + the
    # scalar-served lock-step tail
    assert (
        kernel.dispatch_stats["pairs_dense"]
        + kernel.dispatch_stats["pairs_compact"]
        + kernel.dispatch_stats["pairs_cutover"]
        == len(queries)
    )
    # The whole batched pipeline stays exact on the degraded kernel.
    csr._bulk = kernel
    oracle = BulkDistanceOracle(g)
    reference = PythonDistanceOracle(g)
    requests = random_requests(g, rng, 30)
    batch = oracle.batch()
    handles = [batch.add(*req) for req in requests]
    shared_cache().clear()
    batch.execute()
    assert [h.distance for h in handles] == [
        reference.distance(*req) for req in requests
    ]


def test_c_kernel_off_env_forces_numpy(monkeypatch):
    """REPRO_C_KERNEL=off routes around a perfectly healthy C kernel."""
    monkeypatch.setenv("REPRO_C_KERNEL", "off")
    g = erdos_renyi(50, 0.1, seed=3)
    csr = csr_of(g)
    kernel = BulkCSRKernel(csr, min_bulk_n=0)
    assert not kernel.c_active
    queries = _mixed_queries(g, csr, random.Random(4), 40)
    got = kernel.multi_pair_dists(queries)
    assert kernel.dispatch_stats["pairs_c"] == 0
    for (s, t, eids, verts), d in zip(queries, got):
        ban = csr.stamp_edge_ids(eids, verts)
        assert d == csr.bidir_distance(s, t, ban)


def test_c_kernel_on_raises_when_broken(monkeypatch):
    """REPRO_C_KERNEL=on turns silent degradation into a hard error."""
    monkeypatch.setenv("REPRO_C_KERNEL", "on")
    monkeypatch.setattr(
        ckernel, "_load_state", (None, "simulated broken extension")
    )
    g = erdos_renyi(30, 0.15, seed=5)
    kernel = BulkCSRKernel(csr_of(g), min_bulk_n=0)
    with pytest.raises(RuntimeError, match="simulated broken extension"):
        kernel.multi_pair_dists([(0, 5, [], [])])


def test_tree_repair_exactness_all_regions(monkeypatch):
    """The repair strategy is exact whatever the region cap allows."""
    g = tree_plus_chords(60, 25, seed=31)
    csr = csr_of(g)
    repair = _TreeRepair(csr, 0)
    ref = DistanceOracle(g)
    edges = sorted(g.edges())
    rng = random.Random(5)
    checked = 0
    for _ in range(200):
        eids = sorted(
            csr.resolve_edge_ids(rng.sample(edges, k=rng.randrange(0, 3)))
        )
        targets = rng.sample(range(g.n), k=4)
        got = repair.query_many(targets, eids, limit=10_000)
        assert got is not None
        shared_cache().clear()
        raw = [(i,) for i in eids]
        for t, d in zip(targets, got):
            want = ref.distance(
                0, t, [e for e, i in csr.edge_index.items() if i in eids]
            )
            assert (INF if d == -1 else d) == want
            checked += 1
    assert checked
    # a zero cap defers any tree-fault restriction instead of answering
    tree_eid = next(iter(repair.child_of_eid))
    assert repair.query_many([1], [tree_eid], 0) is None


def test_repair_cap_controls_strategy(monkeypatch):
    g = tree_plus_chords(120, 40, seed=41)
    reqs = None
    results = {}
    for cap in ("0", "100000"):
        monkeypatch.setenv("REPRO_BATCH_REPAIR_MAX", cap)
        oracle = forced_bulk_oracle(g)
        rng = random.Random(3)
        if reqs is None:
            # all probes share source 0 so the repair context is built
            reqs = [
                (0, t, be, bv)
                for _s, t, be, bv in random_requests(g, rng, 60, max_vertices=0)
            ]
        batch = oracle.batch()
        handles = [batch.add(*r) for r in reqs]
        shared_cache().clear()
        batch.execute()
        results[cap] = [h.hops for h in handles]
        # cap 0 only leaves the zero-work case (no tree fault touched);
        # a huge cap routes every eligible restriction through repair
        repaired = batch.stats["repaired"]
        if cap == "0":
            baseline_repaired = repaired
        else:
            assert repaired > baseline_repaired
    assert results["0"] == results["100000"]


@pytest.mark.parametrize(
    "engine",
    [
        "lex",
        "lex-csr",
        "lex-bulk",
        pytest.param("lex-c", marks=needs_ckernel),
    ],
)
def test_cons2_builds_identical_with_and_without_batching(engine, monkeypatch):
    g = tree_plus_chords(40, 18, seed=6)
    structures = {}
    for mode in ("1", "0"):
        monkeypatch.setenv("REPRO_QUERY_BATCH", mode)
        shared_cache().clear()
        h = build_cons2ftbfs(g, 0, engine=engine, keep_records=True)
        structures[mode] = (
            h.edges,
            h.stats["new_edges_per_vertex"],
            h.stats["new_ending_paths"],
            h.stats["satisfied_pairs"],
            h.stats["new_edges_by_phase"],
        )
    assert structures["1"] == structures["0"]


def test_feasibility_probes_certificates_are_exact():
    g = erdos_renyi(50, 0.12, seed=17)
    ctx = SourceContext(g, 0)
    oracle = DistanceOracle(g)
    checked = 0
    for v, faults, certs in feasibility_probes(ctx):
        if certs is None:
            continue
        upper, lower = certs
        if not upper.has_edge(*faults[1]):
            assert oracle.distance(0, v, faults) == len(upper)
            checked += 1
        elif not lower.has_edge(*faults[0]):
            assert oracle.distance(0, v, faults) == len(lower)
            checked += 1
    assert checked > 0


def test_legacy_query_batch_dedupes():
    g = erdos_renyi(15, 0.3, seed=23)
    oracle = PythonDistanceOracle(g)
    batch = oracle.batch()
    assert isinstance(batch, LegacyQueryBatch)
    assert batch.execute() == []
    h1 = batch.add(0, 5)
    h2 = batch.add(0, 5)
    h3 = batch.add(0, 5, ((0, 1),))
    batch.execute()
    assert h1.hops == h2.hops
    assert h1.distance == oracle.distance(0, 5)
    assert h3.distance == oracle.distance(0, 5, ((0, 1),))


def test_sensitivity_batch_uses_planner_and_matches_scalar():
    from repro.ftbfs.sensitivity import DualFaultDistanceOracle

    g = erdos_renyi(30, 0.18, seed=29)
    oracle = DualFaultDistanceOracle(g, 0)
    edges = sorted(g.edges())
    rng = random.Random(4)
    queries = []
    for _ in range(30):
        v = rng.randrange(g.n)
        faults = rng.sample(edges, k=rng.randrange(0, 3))
        queries.append((v, faults))
    want = [oracle.distance(v, f) for v, f in queries]
    shared_cache().clear()
    assert oracle.batch(queries) == want


def test_ft_query_oracle_distances_bulk():
    g = erdos_renyi(30, 0.2, seed=37)
    h = build_cons2ftbfs(g, 0)
    from repro.ftbfs.oracle import FTQueryOracle

    oracle = FTQueryOracle(h)
    edges = sorted(h.subgraph().edges())
    faults = [edges[2], edges[5]]
    targets = list(range(g.n))
    bulk = oracle.distances_bulk(0, targets, faults)
    assert bulk == [oracle.distance(0, t, faults) for t in targets]
