"""Hypothesis property suites spanning the whole stack.

These generate random graphs/fault workloads and assert the paper's
invariants end to end: structure validity, optimality of selected
replacement paths, uniqueness properties, and size monotonicity.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.canonical import INF, DistanceOracle, LexShortestPaths
from repro.core.tree import BFSTree
from repro.ftbfs import (
    build_cons2ftbfs,
    build_dual_ftbfs_simple,
    build_single_ftbfs,
    find_violation,
)
from repro.generators import all_fault_sets, erdos_renyi, tree_plus_chords
from repro.replacement.base import SourceContext
from repro.replacement.single import all_single_replacements

SLOW = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

graphs = st.builds(
    erdos_renyi,
    n=st.integers(min_value=4, max_value=13),
    p=st.floats(min_value=0.15, max_value=0.45),
    seed=st.integers(min_value=0, max_value=10**6),
)
sparse_graphs = st.builds(
    tree_plus_chords,
    n=st.integers(min_value=5, max_value=14),
    chords=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=10**6),
)
any_graph = st.one_of(graphs, sparse_graphs)


@settings(**SLOW)
@given(graph=any_graph)
def test_cons2ftbfs_always_valid(graph):
    h = build_cons2ftbfs(graph, 0)
    assert find_violation(graph, h.edges, [0], 2) is None
    assert h.stats["fallbacks"] == 0


@settings(**SLOW)
@given(graph=any_graph)
def test_simple_dual_always_valid(graph):
    h = build_dual_ftbfs_simple(graph, 0)
    assert find_violation(graph, h.edges, [0], 2) is None


@settings(**SLOW)
@given(graph=any_graph)
def test_single_ftbfs_always_valid(graph):
    h = build_single_ftbfs(graph, 0)
    assert find_violation(graph, h.edges, [0], 1) is None


@settings(**SLOW)
@given(graph=any_graph)
def test_structure_size_monotone_in_f(graph):
    """Dual-failure structures contain a valid single-failure core."""
    h1 = build_single_ftbfs(graph, 0)
    h2 = build_cons2ftbfs(graph, 0)
    # not containment (choices differ), but the dual structure must
    # itself be a valid f=1 structure
    assert find_violation(graph, h2.edges, [0], 1) is None
    assert h2.size >= len(BFSTree(graph, 0).edges())
    assert h1.size >= len(BFSTree(graph, 0).edges())


@settings(**SLOW)
@given(graph=any_graph, fault_seed=st.integers(min_value=0, max_value=100))
def test_replacement_distances_vs_all_faults(graph, fault_seed):
    """For every single fault, selected paths achieve the true distance."""
    ctx = SourceContext(graph, 0)
    oracle = DistanceOracle(graph)
    for v in list(ctx.tree.vertices())[1:6]:
        for e, rep in all_single_replacements(ctx, v).items():
            truth = oracle.distance(0, v, banned_edges=(e,))
            if rep is None:
                assert truth == INF
            else:
                assert len(rep.path) == truth


@settings(**SLOW)
@given(graph=any_graph)
def test_canonical_uniqueness_within_restriction(graph):
    """The engine returns the same path regardless of call order."""
    eng = LexShortestPaths(graph)
    edges = sorted(graph.edges())
    restriction = edges[: min(2, len(edges))]
    first = {}
    for v in range(graph.n):
        res = eng.search(0, banned_edges=restriction)
        if res.reached(v):
            first[v] = res.path(v)
    again = eng.search(0, banned_edges=restriction)
    for v, p in first.items():
        assert again.path(v) == p


@settings(**SLOW)
@given(
    n=st.integers(min_value=4, max_value=10),
    p=st.floats(min_value=0.2, max_value=0.6),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_last_edge_coverage_property(n, p, seed):
    """The coverage invariant behind Lemma 3.2: for every (v, F) with v
    reachable, some shortest path in G \\ F ends with a structure edge."""
    graph = erdos_renyi(n, p, seed=seed)
    h = build_cons2ftbfs(graph, 0)
    oracle = DistanceOracle(graph)
    for faults in all_fault_sets(graph, 2):
        dist = oracle.distances_from(0, banned_edges=faults)
        for v in range(1, graph.n):
            if dist[v] <= 0:
                continue
            fault_set = set(faults)
            ok = any(
                (min(u, v), max(u, v)) in h.edges
                and (min(u, v), max(u, v)) not in fault_set
                and dist[u] == dist[v] - 1
                for u in graph.neighbors(v)
            )
            assert ok, f"no covered last edge for v={v}, F={faults}"
