"""E1 — Theorem 1.1: dual-failure FT-BFS structures have O(n^{5/3}) edges.

Regenerates the paper's headline size bound as a measured series:
``|E(H)|`` produced by Algorithm Cons2FTBFS on (a) sparse random graphs
and (b) the adversarial ``G*_2`` family, with the empirical log-log
exponent next to the theoretical 5/3.
"""

import pytest

from repro.analysis import fit_power_law
from repro.ftbfs import build_cons2ftbfs
from repro.generators import erdos_renyi
from repro.lowerbound import build_lower_bound_graph

from _common import emit, table

ER_SWEEP = [60, 100, 150, 220]
ADV_SWEEP = [92, 250]


def test_e1_upper_bound_scaling(benchmark):
    rows = []
    er_sizes = []
    for n in ER_SWEEP:
        g = erdos_renyi(n, 5.0 / n, seed=1)
        h = build_cons2ftbfs(g, 0)
        er_sizes.append(h.size)
        rows.append(
            ["ER(5/n)", n, g.m, h.size, f"{h.size / n ** (5 / 3):.3f}",
             h.stats["max_new_edges"]]
        )
    adv_sizes = []
    for n in ADV_SWEEP:
        inst = build_lower_bound_graph(n, 2)
        h = build_cons2ftbfs(inst.graph, inst.sources[0])
        adv_sizes.append(h.size)
        rows.append(
            ["G*_2", n, inst.graph.m, h.size,
             f"{h.size / n ** (5 / 3):.3f}", h.stats["max_new_edges"]]
        )

    er_fit = fit_power_law(ER_SWEEP, er_sizes)
    adv_fit = fit_power_law(ADV_SWEEP, adv_sizes)
    body = table(
        ["family", "n", "m", "|E(H)|", "size/n^(5/3)", "max |New(v)|"], rows
    )
    body += (
        f"\nempirical exponent ER: {er_fit.alpha:.3f} (R2={er_fit.r_squared:.3f})"
        f"\nempirical exponent G*_2: {adv_fit.alpha:.3f}"
        f"  [theory: <= 5/3 ~ 1.667]"
    )
    emit("E1", "Cons2FTBFS size vs n (Thm 1.1)", body)

    # Shape assertions: the bound respects O(n^{5/3}) with a small
    # constant on both families; sparse ER stays clearly below it.
    for n, size in zip(ER_SWEEP, er_sizes):
        assert size <= 3 * n ** (5 / 3)
    for n, size in zip(ADV_SWEEP, adv_sizes):
        assert size <= 3 * n ** (5 / 3)
    assert er_fit.alpha <= 5 / 3 + 0.15
    assert adv_fit.alpha <= 5 / 3 + 0.15

    g = erdos_renyi(150, 5.0 / 150, seed=1)
    benchmark.pedantic(
        lambda: build_cons2ftbfs(g, 0), rounds=2, iterations=1
    )
