"""E7 — Section 3: per-vertex new-edge counts |New(v)| are O(n^{2/3}).

Regenerates the quantity at the heart of the Thm 1.1 proof: the maximum
over vertices of the number of new edges Cons2FTBFS adds at ``v``,
versus the ``n^{2/3}`` envelope, on random and adversarial graphs.
"""

import pytest

from repro.analysis import fit_power_law
from repro.ftbfs import build_cons2ftbfs, new_edge_profile
from repro.generators import tree_plus_chords
from repro.lowerbound import build_lower_bound_graph

from _common import emit, table

SWEEP = [30, 60, 120, 200]


def test_e7_new_edges_per_vertex(benchmark):
    rows = []
    maxima = []
    for n in SWEEP:
        g = tree_plus_chords(n, n // 2, seed=n + 1)
        h = build_cons2ftbfs(g, 0)
        profile = new_edge_profile(h)
        mx = profile[0] if profile else 0
        top5 = profile[:5]
        maxima.append(max(mx, 1))
        rows.append(
            ["chords", n, mx, str(top5), f"{mx / n ** (2 / 3):.3f}"]
        )
        assert mx <= 3 * n ** (2 / 3), f"per-vertex bound violated at n={n}"

    for n in [92, 250]:
        inst = build_lower_bound_graph(n, 2)
        h = build_cons2ftbfs(inst.graph, inst.sources[0])
        profile = new_edge_profile(h)
        mx = profile[0] if profile else 0
        rows.append(
            ["G*_2", n, mx, str(profile[:5]), f"{mx / n ** (2 / 3):.3f}"]
        )
        assert mx <= 3 * n ** (2 / 3)

    fit = fit_power_law(SWEEP, maxima)
    body = table(
        ["family", "n", "max |New(v)|", "top-5 |New(v)|", "max / n^(2/3)"],
        rows,
    )
    body += f"\nempirical exponent (chords family): {fit.alpha:.3f} (theory <= 2/3)"
    emit("E7", "per-vertex new edges vs n^(2/3) (Thm 1.1 core)", body)
    assert fit.alpha <= 2 / 3 + 0.35

    g = tree_plus_chords(120, 60, seed=121)
    benchmark.pedantic(
        lambda: new_edge_profile(build_cons2ftbfs(g, 0)),
        rounds=2,
        iterations=1,
    )
