"""E4 — Lemma 1.5 / 3.18: (π,π) last edges number O(√n) per vertex.

Regenerates the per-vertex bound on new edges contributed by steps 1-2
(single faults and fault pairs on π(s, v)): the maximum over vertices of
``new_from_single + new_from_pipi`` grows like O(√n).
"""

import pytest

from repro.analysis import fit_power_law
from repro.ftbfs import build_cons2ftbfs
from repro.generators import tree_plus_chords

from _common import emit, table

SWEEP = [30, 60, 120, 200]


def test_e4_pipi_per_vertex_bound(benchmark):
    rows = []
    maxima = []
    for n in SWEEP:
        g = tree_plus_chords(n, n // 2, seed=n)
        h = build_cons2ftbfs(g, 0, keep_records=True)
        per_vertex = [
            rec.new_from_single + rec.new_from_pipi
            for rec in h.stats["records"]
        ]
        mx = max(per_vertex, default=0)
        mean = sum(per_vertex) / max(len(per_vertex), 1)
        maxima.append(max(mx, 1))
        rows.append(
            [n, g.m, mx, f"{mean:.2f}", f"{mx / n ** 0.5:.3f}"]
        )
        assert mx <= 3 * n ** 0.5, f"(π,π) bound violated at n={n}"

    fit = fit_power_law(SWEEP, maxima)
    body = table(
        ["n", "m", "max π-edges/vertex", "mean", "max / sqrt(n)"], rows
    )
    body += f"\nempirical exponent: {fit.alpha:.3f} (theory <= 0.5)"
    emit("E4", "per-vertex (π,π) last edges vs sqrt(n) (Lem 3.18)", body)
    assert fit.alpha <= 0.5 + 0.35

    g = tree_plus_chords(120, 60, seed=120)
    benchmark.pedantic(
        lambda: build_cons2ftbfs(g, 0), rounds=2, iterations=1
    )
