"""E20 — weighted engine family: Dial-vs-heap ladder + weighted Abilene sweep.

PR 10 added the weighted + ECMP engine family (``wlex`` / ``wlex-csr``,
see ``docs/weighted.md``).  This benchmark persists two things:

* **Dial-vs-heap ladder** — full-search wall time per engine arm on
  random weighted graphs under each weighting kind: tie-heavy small
  integers (``wlex-csr`` runs its Dial bucket queue), big integers and
  floats (heap fallback).  On the tie-int rungs a third arm forces the
  CSR engine's heap on the same graph, isolating the queue-discipline
  cost; every arm's search results are asserted bit-identical before
  any timing is trusted.
* **Weighted Abilene sweep** — the ``abilene_weighted.json`` corpus
  blueprint (real Abilene link delays) swept per weighted engine and
  execution mode (fresh vs delta), report bodies asserted
  bit-identical across all four arms.

Environment knobs (used by CI's smoke run):

``REPRO_E20_SIZES``
    Comma list of ``n:p`` ER rungs for the ladder (default
    ``200:0.035,400:0.02``).
``REPRO_E20_SOURCES``
    Sources searched per timed arm (default 24, capped at n).
``REPRO_BENCH_ROUNDS``
    Best-of rounds per timed arm (default 2).
"""

import os
import sys
import time

from repro.core.scenario import (
    assert_identical_reports,
    load_blueprint,
    report_signature,
    strip_volatile,
    sweep_blueprint,
)
from repro.core.snapshot_cache import SnapshotCache
from repro.core.weighted import (
    CSRWeightedShortestPaths,
    WeightedLexShortestPaths,
)
from repro.generators import erdos_renyi

from _common import TOPOLOGIES_DIR, emit, emit_json, table

# The weighted graph generators live in tests/zoo.py (shared with the
# weighted differential suites); make the repo root importable.
sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
from tests.zoo import reweight  # noqa: E402

KINDS = ("tie-int", "big-int", "float")
MODES = ("fresh", "delta")
WEIGHTED_ENGINES = ("wlex", "wlex-csr")


def _sizes():
    spec = os.environ.get("REPRO_E20_SIZES", "200:0.035,400:0.02")
    out = []
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        n, p = item.split(":")
        out.append((int(n), float(p)))
    return out


def _rounds():
    return max(1, int(os.environ.get("REPRO_BENCH_ROUNDS", "2")))


def _source_count():
    return max(1, int(os.environ.get("REPRO_E20_SOURCES", "24")))


def _forced_heap(graph):
    engine = CSRWeightedShortestPaths(graph, cache=SnapshotCache())
    engine._use_dial = False
    return engine


def _arm_factories(graph):
    """Per-arm engine factories for one rung.

    Factories, not instances: every timed round gets a *fresh* engine
    with a *private* cache, so the ladder times the queues — a reused
    CSR engine would answer round two from its snapshot-cache memo
    while the reference arm recomputes, fabricating a huge "speedup".
    """
    factories = {
        "wlex": lambda: WeightedLexShortestPaths(graph),
        "wlex-csr": lambda: CSRWeightedShortestPaths(
            graph, cache=SnapshotCache()
        ),
    }
    if CSRWeightedShortestPaths(graph, cache=SnapshotCache())._use_dial:
        factories["wlex-csr/heap"] = lambda: _forced_heap(graph)
    return factories


def _time_arm(factory, sources, rounds):
    best = float("inf")
    for _ in range(rounds):
        engine = factory()  # construction (CSR bind) outside the clock
        t0 = time.perf_counter()
        for s in sources:
            engine.search(s)
        best = min(best, time.perf_counter() - t0)
    return best


def test_e20_weighted_family(benchmark):
    rounds = _rounds()
    rows = []
    ladder = []
    for n, p in _sizes():
        base = erdos_renyi(n, p, seed=20)
        step = max(1, n // _source_count())
        sources = list(range(0, n, step))[: _source_count()]
        for kind in KINDS:
            graph = reweight(base, seed=n, kind=kind)
            factories = _arm_factories(graph)
            # Identity before speed: every arm must produce the same
            # distances (the differential contract of the family).
            reference = factories["wlex"]()
            baseline = {
                s: list(reference.search(s).distances()) for s in sources
            }
            for label, factory in factories.items():
                if label == "wlex":
                    continue
                engine = factory()
                for s in sources:
                    got = list(engine.search(s).distances())
                    assert got == baseline[s], (
                        f"{label} diverges from wlex at n={n} kind={kind} "
                        f"source={s}"
                    )
            timings = {}
            for label, factory in factories.items():
                timings[label] = _time_arm(factory, sources, rounds)
            queue = "dial" if "wlex-csr/heap" in timings else "heap"
            for label, seconds in timings.items():
                rows.append([
                    f"er n={n}",
                    kind,
                    label,
                    queue if label == "wlex-csr" else (
                        "heap" if label.endswith("heap") else "-"
                    ),
                    f"{1000.0 * seconds:.1f}",
                    f"{timings['wlex'] / seconds:.2f}x" if seconds else "n/a",
                ])
            ladder.append({
                "workload": f"er:{n}:{p}",
                "kind": kind,
                "sources": len(sources),
                "csr_queue": queue,
                "seconds": timings,
                "csr_vs_reference": (
                    timings["wlex"] / timings["wlex-csr"]
                    if timings["wlex-csr"] else None
                ),
                "dial_vs_heap": (
                    timings["wlex-csr/heap"] / timings["wlex-csr"]
                    if timings.get("wlex-csr/heap") else None
                ),
            })

    # Weighted Abilene sweep: the real-delay corpus blueprint across
    # both weighted engines and both execution modes.
    blueprint = load_blueprint(TOPOLOGIES_DIR / "abilene_weighted.json")
    reports, labels, sweep_arms = [], [], {}
    for engine in WEIGHTED_ENGINES:
        sweep_arms[engine] = {}
        for mode in MODES:
            best = float("inf")
            report = None
            for _ in range(rounds):
                t0 = time.perf_counter()
                report = sweep_blueprint(blueprint, engine=engine, mode=mode)
                best = min(best, time.perf_counter() - t0)
            sweep_arms[engine][mode] = best
            reports.append(report)
            labels.append(f"{engine}/{mode}")
    assert_identical_reports(reports, labels)
    body = strip_volatile(reports[0])
    for engine in WEIGHTED_ENGINES:
        fresh, delta = sweep_arms[engine]["fresh"], sweep_arms[engine]["delta"]
        rows.append([
            blueprint.name,
            "delays",
            engine,
            "-",
            f"{1000.0 * fresh:.1f}",
            f"{fresh / delta:.2f}x delta" if delta else "n/a",
        ])

    body_txt = table(
        ["workload", "weights", "engine", "queue", "ms", "speedup"],
        rows,
    )
    body_txt += (
        "\nladder: full searches from the source set, best-of rounds, every"
        "\narm asserted bit-identical to wlex first; wlex-csr/heap = the CSR"
        "\nengine with its Dial queue disabled on the same graph.  abilene:"
        "\nthe weighted corpus sweep, fresh-arm ms with fresh/delta ratio."
    )
    emit("E20", "weighted engine family (Dial-vs-heap + Abilene delays)", body_txt)
    emit_json(
        "e20",
        {
            "experiment": "e20_weighted",
            "rounds": rounds,
            "ladder": ladder,
            "abilene": {
                "blueprint": blueprint.name,
                "signature": report_signature(reports[0]),
                "scenarios": len(body["scenarios"]),
                "arms": {
                    engine: {
                        "fresh_seconds": sweep_arms[engine]["fresh"],
                        "delta_seconds": sweep_arms[engine]["delta"],
                    }
                    for engine in WEIGHTED_ENGINES
                },
            },
        },
    )

    # pytest-benchmark bookkeeping: one representative weighted sweep
    # (real numbers are the best-of arms above).
    benchmark.pedantic(
        lambda: sweep_blueprint(blueprint, engine="wlex-csr", mode="fresh"),
        rounds=1,
        iterations=1,
    )
