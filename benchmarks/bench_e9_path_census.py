"""E9 — Fig. 7: five-way new-ending path classification census.

Regenerates the classification at the heart of the size analysis: how
the new-ending paths of real Cons2FTBFS runs distribute over the classes
``P_π``, ``P_nodet``, ``P_indep``, ``I_π``, ``I_D``, plus the per-phase
new-edge split.
"""

import pytest

from repro.analysis import path_class_census
from repro.ftbfs import build_cons2ftbfs
from repro.generators import erdos_renyi, tree_plus_chords
from repro.replacement.classify import PathClass

from _common import emit, table

CASES = [
    ("ER n=60 p=.1", lambda: erdos_renyi(60, 0.1, seed=11)),
    ("chords n=60", lambda: tree_plus_chords(60, 35, seed=12)),
    ("chords n=120", lambda: tree_plus_chords(120, 70, seed=13)),
]


def adversarial_case():
    from repro.lowerbound import build_lower_bound_graph

    inst = build_lower_bound_graph(92, 2)
    return inst.graph, inst.sources[0]


def test_e9_path_class_census(benchmark):
    rows = []
    cases = [(label, lambda make=make: (make(), 0)) for label, make in CASES]
    cases.append(("G*_2 n=92", adversarial_case))
    for label, make in cases:
        g, source = make()
        h = build_cons2ftbfs(g, source, keep_records=True)
        census = path_class_census(h)
        total = sum(census.values())
        phases = h.stats["new_edges_by_phase"]
        row = [label, total]
        for cls in PathClass:
            row.append(census[cls])
        row.append(f"{phases['single']}/{phases['pipi']}/{phases['pid']}")
        rows.append(row)
        # the census partitions exactly the recorded new-ending paths
        expected = sum(
            len(r.pipi_records) + len(r.new_ending)
            for r in h.stats["records"]
        )
        assert total == expected

    headers = ["graph", "total"] + [c.value for c in PathClass] + [
        "new edges s/ππ/πD"
    ]
    body = table(headers, rows)
    emit("E9", "new-ending path class census (Fig. 7)", body)

    g = tree_plus_chords(60, 35, seed=12)
    benchmark.pedantic(
        lambda: path_class_census(build_cons2ftbfs(g, 0, keep_records=True)),
        rounds=2,
        iterations=1,
    )
