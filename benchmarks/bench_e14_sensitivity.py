"""E14 (extension) — sensitivity-oracle query costs (the [5, 2, 7] context).

The introduction contrasts FT-BFS structures with f-sensitivity distance
oracles.  This experiment measures the single-source query-cost spectrum
the library offers:

* naive: BFS over the full graph per query;
* table: O(1) lookups for one fault (``SingleFaultDistanceOracle``);
* structure: BFS over the sparse FT-BFS subgraph for two faults
  (``DualFaultDistanceOracle``).
"""

import time

import pytest

from repro.core.canonical import DistanceOracle
from repro.ftbfs.sensitivity import (
    DualFaultDistanceOracle,
    SingleFaultDistanceOracle,
)
from repro.generators import erdos_renyi, sample_queries

from _common import emit, table

N, P, SEED = 120, 0.06, 33


def test_e14_sensitivity_query_costs(benchmark):
    g = erdos_renyi(N, P, seed=SEED)
    single = SingleFaultDistanceOracle(g, 0)
    dual = DualFaultDistanceOracle(g, 0)
    naive = DistanceOracle(g)
    queries1 = [
        (v, faults[0]) for v, faults in sample_queries(g, 1, 400, seed=1) if faults
    ]
    queries2 = [
        (v, faults) for v, faults in sample_queries(g, 2, 400, seed=2)
        if len(faults) == 2
    ]

    def timed(fn, reps=1):
        t0 = time.perf_counter()
        for _ in range(reps):
            fn()
        return (time.perf_counter() - t0) / reps

    t_naive1 = timed(
        lambda: [naive.distance(0, v, banned_edges=(e,)) for v, e in queries1]
    )
    t_table1 = timed(
        lambda: [single.distance(v, e) for v, e in queries1], reps=5
    )
    t_naive2 = timed(
        lambda: [naive.distance(0, v, banned_edges=f) for v, f in queries2]
    )
    t_struct2 = timed(
        lambda: [dual.distance(v, f) for v, f in queries2]
    )

    # correctness spot check on the measured batches
    for v, e in queries1[:50]:
        assert single.distance(v, e) == naive.distance(0, v, banned_edges=(e,))
    for v, f in queries2[:50]:
        assert dual.distance(v, f) == naive.distance(0, v, banned_edges=f)

    rows = [
        ["1 fault, naive BFS on G", len(queries1), f"{1e6 * t_naive1 / len(queries1):.1f}"],
        ["1 fault, table lookup", len(queries1), f"{1e6 * t_table1 / len(queries1):.1f}"],
        ["2 faults, naive BFS on G", len(queries2), f"{1e6 * t_naive2 / len(queries2):.1f}"],
        ["2 faults, BFS on sparse H", len(queries2), f"{1e6 * t_struct2 / len(queries2):.1f}"],
    ]
    body = table(["query mode", "queries", "us/query"], rows)
    body += (
        f"\nstructure size {dual.structure_size} vs m={g.m}; table "
        f"preprocessing: {single.preprocessing_tables} BFS runs"
    )
    emit("E14", "sensitivity-oracle query costs", body)

    # the table oracle must beat per-query BFS by a wide margin
    assert t_table1 < t_naive1 / 3

    benchmark(lambda: [single.distance(v, e) for v, e in queries1])
