"""E19 — scenario-corpus sweeps: recovery metrics + rebuild-vs-delta cost.

PR 9 added the real-topology scenario subsystem: corpus topologies
(:mod:`repro.core.topology`), versioned failure-scenario blueprints
(:mod:`repro.core.scenario`) and the ``repro scenarios`` sweep.  This
benchmark replays the checked-in mini-corpus under
``benchmarks/topologies/`` and persists two things per blueprint:

* **Recovery metrics** — per-scenario replacement-path stretch,
  affected/disconnected pair counts and structural delta cost, i.e.
  the deterministic sweep-report body (identical across engines and
  execution modes — asserted here before any timing is trusted, the
  same differential contract ``tests/diffcheck.py`` enforces).
* **Rebuild-vs-delta cost** — wall time of the ``fresh`` arm (a graph
  plus oracle rebuilt per scenario step) against the ``delta`` arm
  (one long-lived graph absorbing each step via ``apply_delta``),
  per engine, best of ``REPRO_BENCH_ROUNDS``.

Environment knobs (used by CI's smoke run):

``REPRO_E19_BLUEPRINTS``
    Comma list of blueprint paths (default: every ``*.json`` under
    ``benchmarks/topologies/``).
``REPRO_E19_ENGINES``
    Comma list of engines, or ``all`` for every hop engine (default
    ``lex-csr`` plus ``lex-c`` when the C kernel loads); engines this
    host cannot run are skipped and recorded as such.  The weighted
    family is excluded from ``all`` — its distance bodies are not
    comparable to hop bodies (E20 sweeps it separately).
``REPRO_BENCH_ROUNDS``
    Best-of rounds per timed arm (default 2).
"""

import os
import pathlib
import time

from repro.core.canonical import ENGINES, make_engine
from repro.core.errors import GraphError
from repro.core.scenario import (
    assert_identical_reports,
    load_blueprint,
    report_signature,
    strip_volatile,
    sweep_blueprint,
)

from _common import TOPOLOGIES_DIR, cold_cache, emit, emit_json, table

MODES = ("fresh", "delta")


def _blueprints():
    spec = os.environ.get("REPRO_E19_BLUEPRINTS", "").strip()
    if spec:
        return [pathlib.Path(p.strip()) for p in spec.split(",") if p.strip()]
    return sorted(TOPOLOGIES_DIR.glob("*.json"))


def _engines(graph):
    spec = os.environ.get("REPRO_E19_ENGINES", "").strip()
    if spec == "all":
        # Hop engines only: weighted-family bodies are not comparable
        # to hop bodies, so they would fail the cross-arm identity
        # assertion by construction (E20 sweeps the weighted family).
        wanted = [
            e for e in sorted(ENGINES)
            if not getattr(ENGINES[e], "weighted", False)
        ]
    elif spec:
        wanted = [e.strip() for e in spec.split(",") if e.strip()]
    else:
        wanted = ["lex-csr", "lex-c"]
    available, skipped = [], []
    for engine in wanted:
        try:
            make_engine(graph, engine)
        except GraphError as err:
            skipped.append((engine, str(err)))
            continue
        available.append(engine)
    return available, skipped


def _rounds():
    return max(1, int(os.environ.get("REPRO_BENCH_ROUNDS", "2")))


def test_e19_scenario_corpus(benchmark):
    rounds = _rounds()
    rows = []
    records = []
    first = None
    for path in _blueprints():
        blueprint = load_blueprint(path)
        topo = blueprint.topology()
        engines, skipped = _engines(topo.graph)
        assert engines, f"no requested engine available for {path.name}"
        reports = []
        labels = []
        arms = {}
        for engine in engines:
            arms[engine] = {}
            for mode in MODES:
                best = float("inf")
                report = None
                for _ in range(rounds):
                    cold_cache()
                    t0 = time.perf_counter()
                    report = sweep_blueprint(blueprint, engine=engine, mode=mode)
                    best = min(best, time.perf_counter() - t0)
                arms[engine][mode] = best
                reports.append(report)
                labels.append(f"{engine}/{mode}")
        # Identity before speed: every engine/mode arm must agree on
        # the deterministic report body.
        assert_identical_reports(reports, labels)
        body = strip_volatile(reports[0])
        if first is None:
            first = body
        scenarios = body["scenarios"]
        worst = max(
            (s["max_stretch"] for s in scenarios
             if s["max_stretch"] is not None),
            default=None,
        )
        for engine in engines:
            fresh, delta = arms[engine]["fresh"], arms[engine]["delta"]
            rows.append([
                blueprint.name,
                f"{body['blueprint']['n']}/{body['blueprint']['m']}",
                len(scenarios),
                engine,
                f"{1000.0 * fresh:.1f}",
                f"{1000.0 * delta:.1f}",
                f"{fresh / delta:.2f}x" if delta else "n/a",
                f"{worst:.2f}" if worst is not None else "-",
            ])
        records.append({
            "blueprint": str(path),
            "name": blueprint.name,
            "signature": report_signature(reports[0]),
            "engines": engines,
            "skipped_engines": skipped,
            "arms": {
                engine: {
                    "fresh_seconds": arms[engine]["fresh"],
                    "delta_seconds": arms[engine]["delta"],
                    "fresh_vs_delta": (
                        arms[engine]["fresh"] / arms[engine]["delta"]
                        if arms[engine]["delta"] else None
                    ),
                }
                for engine in engines
            },
            "report": body,
        })
    body_txt = table(
        ["blueprint", "n/m", "scenarios", "engine", "fresh ms",
         "delta ms", "fresh/delta", "max stretch"],
        rows,
    )
    body_txt += (
        "\nper blueprint: every engine/mode arm's deterministic report "
        "\nbody asserted bit-identical before timing; fresh = per-step "
        "\nrebuild, delta = incremental apply_delta."
    )
    emit("E19", "scenario-corpus sweeps (recovery + rebuild-vs-delta)", body_txt)
    emit_json(
        "e19",
        {
            "experiment": "e19_scenarios",
            "rounds": rounds,
            "modes": list(MODES),
            "blueprints": records,
        },
    )

    # pytest-benchmark bookkeeping: one representative sweep of the
    # first corpus blueprint (real numbers are the best-of arms above).
    first_path = _blueprints()[0]
    bp = load_blueprint(first_path)
    benchmark.pedantic(
        lambda: sweep_blueprint(bp, mode="fresh"), rounds=1, iterations=1
    )
