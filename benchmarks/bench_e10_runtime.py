"""E10 — construction and query costs (objectives (1)/(2) of Sec. 1).

The paper argues preprocessing cost is secondary to structure size and
usage quality; this benchmark quantifies all three on a fixed instance:
builder wall-times (pytest-benchmark), structure sizes, and oracle query
throughput from the stored structure.
"""

import pytest

from repro.ftbfs import (
    FTQueryOracle,
    build_approx_ftmbfs,
    build_cons2ftbfs,
    build_dual_ftbfs_simple,
    build_generic_ftbfs,
    build_single_ftbfs,
)
from repro.generators import erdos_renyi, sample_queries

from _common import emit, table

N, P, SEED = 80, 0.07, 20


def _graph():
    return erdos_renyi(N, P, seed=SEED)


@pytest.fixture(scope="module")
def shared_graph():
    return _graph()


def test_e10_build_single(benchmark, shared_graph):
    h = benchmark.pedantic(
        lambda: build_single_ftbfs(shared_graph, 0), rounds=3, iterations=1
    )
    assert h.size <= shared_graph.m


def test_e10_build_cons2(benchmark, shared_graph):
    h = benchmark.pedantic(
        lambda: build_cons2ftbfs(shared_graph, 0), rounds=3, iterations=1
    )
    assert h.size <= shared_graph.m


def test_e10_build_simple_dual(benchmark, shared_graph):
    h = benchmark.pedantic(
        lambda: build_dual_ftbfs_simple(shared_graph, 0), rounds=3, iterations=1
    )
    assert h.size <= shared_graph.m


def test_e10_build_generic_f2(benchmark, shared_graph):
    h = benchmark.pedantic(
        lambda: build_generic_ftbfs(shared_graph, 0, 2), rounds=2, iterations=1
    )
    assert h.size <= shared_graph.m


def test_e10_oracle_queries(benchmark, shared_graph):
    h = build_cons2ftbfs(shared_graph, 0)
    oracle = FTQueryOracle(h)
    queries = sample_queries(shared_graph, 2, 200, seed=2)

    def run():
        return [oracle.distance(0, v, faults) for v, faults in queries]

    results = benchmark(run)
    assert len(results) == 200

    rows = [
        ["graph", f"n={N}, p={P}, m={shared_graph.m}"],
        ["structure size", h.size],
        ["query batch", "200 mixed 0-2 fault queries"],
    ]
    emit("E10", "construction & query cost summary", table(["item", "value"], rows))
