"""E10 — construction and query costs (objectives (1)/(2) of Sec. 1).

The paper argues preprocessing cost is secondary to structure size and
usage quality; this benchmark quantifies all three on a fixed instance:
builder wall-times (pytest-benchmark), structure sizes, and oracle query
throughput from the stored structure.

Since the flat-array traversal kernel landed, E10 additionally measures
the **engine speedup**: the identical end-to-end workload (all exact
builders plus a 200-query batch) is timed under the legacy ``lex``
engine (layered dict BFS + hash-set ban tests, the pre-kernel system),
the default ``lex-csr`` engine (pooled python CSR kernel), and the
vectorized ``lex-bulk`` engine (numpy whole-frontier kernel), across a
ladder of graph sizes reaching n=1000.  The process-wide snapshot
cache is cleared before every timed round so each arm is measured
cold.  Results — including the speedups the kernels are required to
sustain at the largest size — are persisted as machine-readable
``BENCH_e10.json`` via :func:`_common.emit_json`; CI's bench job
enforces the floors on every PR and the nightly run covers the full
ladder.

Environment knobs (used by CI's quick smoke run):

``REPRO_BENCH_SIZES``
    Comma list of ``n:p[:est]`` ladder points (default
    ``80:0.07,120:0.05,200:0.035,1000:0.008,5000:0.0016:est``).  An
    ``est`` rung does not run the legacy ``lex`` arm at all — at
    n=5000 the legacy engine alone would blow the nightly hour — and
    instead *estimates* its wall time from a power-law fit
    (``t_lex(n) = C·n^α``) over the measured sub-ladder, reporting
    ``legacy_estimated: true`` in the JSON record.  At least two
    measured rungs must precede an ``est`` rung (otherwise it is run
    normally).
``REPRO_BENCH_ROUNDS``
    Best-of rounds per arm (default 2).
``REPRO_BENCH_MIN_SPEEDUP``
    Required kernel-vs-legacy speedup for *both* ``lex-csr`` and
    ``lex-bulk`` at the largest ladder size whose legacy arm was
    *measured* (default 2.0; CI's small smoke sizes set it lower —
    small graphs under-display the kernels' advantage).  Estimated
    rungs never gate this floor: extrapolation error should not fail a
    build.
``REPRO_BENCH_MIN_BULK_VS_CSR``
    Required ``lex-bulk`` vs ``lex-csr`` ratio at the largest size
    (default 0, i.e. informational; the nightly full-ladder run sets
    1.0 — the bulk kernel must not fall behind the python kernel at
    n=1000).
``REPRO_BENCH_JOBS`` / ``REPRO_BENCH_MIN_PARALLEL_SCALING``
    Worker-count axis and scaling floor of the cores-axis arm
    (:func:`_common.jobs_axis` / :func:`_common.scaling_floor`):
    the per-tree-edge sensitivity tabulation — the O(n·m)
    preprocessing pass of the paper's oracle lineage — re-timed under
    a process pool, tables asserted identical to the serial run.
"""

import math
import os
import time

import pytest

from repro.core import parallel
from repro.ftbfs import (
    FTQueryOracle,
    build_approx_ftmbfs,
    build_cons2ftbfs,
    build_dual_ftbfs_simple,
    build_generic_ftbfs,
    build_single_ftbfs,
)
from repro.ftbfs.sensitivity import SingleFaultDistanceOracle
from repro.generators import erdos_renyi, sample_queries

from _common import (
    cold_cache,
    emit,
    emit_json,
    engine_arms,
    jobs_axis,
    scaling_floor,
    table,
)

N, P, SEED = 80, 0.07, 20


def _graph():
    return erdos_renyi(N, P, seed=SEED)


@pytest.fixture(scope="module")
def shared_graph():
    return _graph()


def test_e10_build_single(benchmark, shared_graph):
    h = benchmark.pedantic(
        lambda: build_single_ftbfs(shared_graph, 0), rounds=3, iterations=1
    )
    assert h.size <= shared_graph.m


def test_e10_build_cons2(benchmark, shared_graph):
    h = benchmark.pedantic(
        lambda: build_cons2ftbfs(shared_graph, 0), rounds=3, iterations=1
    )
    assert h.size <= shared_graph.m


def test_e10_build_simple_dual(benchmark, shared_graph):
    h = benchmark.pedantic(
        lambda: build_dual_ftbfs_simple(shared_graph, 0), rounds=3, iterations=1
    )
    assert h.size <= shared_graph.m


def test_e10_build_generic_f2(benchmark, shared_graph):
    h = benchmark.pedantic(
        lambda: build_generic_ftbfs(shared_graph, 0, 2), rounds=2, iterations=1
    )
    assert h.size <= shared_graph.m


def test_e10_oracle_queries(benchmark, shared_graph):
    h = build_cons2ftbfs(shared_graph, 0)
    oracle = FTQueryOracle(h)
    queries = sample_queries(shared_graph, 2, 200, seed=2)

    def run():
        return [oracle.distance(0, v, faults) for v, faults in queries]

    results = benchmark(run)
    assert len(results) == 200

    rows = [
        ["graph", f"n={N}, p={P}, m={shared_graph.m}"],
        ["structure size", h.size],
        ["query batch", "200 mixed 0-2 fault queries"],
    ]
    emit("E10", "construction & query cost summary", table(["item", "value"], rows))


# ----------------------------------------------------------------------
# engine comparison: legacy lex vs the CSR kernel vs the numpy bulk kernel
# ----------------------------------------------------------------------
def _ladder():
    spec = os.environ.get(
        "REPRO_BENCH_SIZES",
        "80:0.07,120:0.05,200:0.035,1000:0.008,5000:0.0016:est",
    )
    out = []
    for item in spec.split(","):
        parts = item.split(":")
        out.append((int(parts[0]), float(parts[1]), "est" in parts[2:]))
    return out


def _suite(graph, queries, engine):
    """The identical end-to-end E10 workload under one engine."""
    build_single_ftbfs(graph, 0, engine=engine)
    h = build_cons2ftbfs(graph, 0, engine=engine)
    build_dual_ftbfs_simple(graph, 0, engine=engine)
    build_generic_ftbfs(graph, 0, 2, engine=engine)
    oracle = FTQueryOracle(h, engine=engine)
    for v, faults in queries:
        oracle.distance(0, v, faults)
    return h


def test_e10_engine_speedup(benchmark):
    rounds = int(os.environ.get("REPRO_BENCH_ROUNDS", "2"))
    min_speedup = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "2.0"))
    min_bulk_vs_csr = float(os.environ.get("REPRO_BENCH_MIN_BULK_VS_CSR", "0"))
    arms = engine_arms()  # ["lex", "lex-csr", "lex-bulk"] when numpy present
    kernels = [e for e in arms if e != "lex"]
    ladder = _ladder()
    measured_ns: list = []
    measured_lex: list = []
    rows = []
    entries = []
    for n, p, estimate_legacy in ladder:
        # An `est` rung is only honored once the measured sub-ladder can
        # support the power-law fit.
        estimate_legacy = estimate_legacy and len(measured_ns) >= 2
        rung_arms = kernels if estimate_legacy else arms
        g = erdos_renyi(n, p, seed=SEED)
        queries = sample_queries(g, 2, 200, seed=2)
        times = {}
        sizes = {}
        for engine in rung_arms:
            best = float("inf")
            for _ in range(rounds):
                cold_cache()  # no arm may ride another's warm memo
                t0 = time.perf_counter()
                h = _suite(g, queries, engine)
                best = min(best, time.perf_counter() - t0)
            times[engine] = best
            sizes[engine] = h.size
        # All engines must produce the identical structure, exactly.
        assert len(set(sizes.values())) == 1, sizes
        if estimate_legacy:
            from repro.analysis import fit_power_law

            fit = fit_power_law(measured_ns, measured_lex)
            lex_seconds = math.exp(fit.log_c) * n**fit.alpha
        else:
            lex_seconds = times["lex"]
            measured_ns.append(n)
            measured_lex.append(lex_seconds)
        speedups = {e: lex_seconds / times[e] for e in kernels}
        lex_cell = f"{1000.0 * lex_seconds:.1f}" + ("~" if estimate_legacy else "")
        rows.append(
            [f"n={n}, m={g.m}"]
            + [
                lex_cell if e == "lex" else f"{1000.0 * times[e]:.1f}"
                for e in arms
            ]
            + [f"{speedups[e]:.2f}x" for e in kernels]
        )
        entries.append(
            {
                "n": n,
                "p": p,
                "m": g.m,
                "structure_size": sizes["lex-csr"],
                "seconds": {e: times[e] for e in rung_arms},
                "speedup_vs_legacy": speedups,
                "legacy_estimated": estimate_legacy,
                "bulk_vs_csr": (
                    times["lex-csr"] / times["lex-bulk"]
                    if "lex-bulk" in times
                    else None
                ),
                # kept for dashboards diffing against pre-bulk records
                "legacy_lex_seconds": lex_seconds,
                "lex_csr_seconds": times["lex-csr"],
                "speedup": speedups["lex-csr"],
            }
        )
    body = table(
        ["graph"]
        + [f"{e} (ms)" for e in arms]
        + [f"{e} speedup" for e in kernels],
        rows,
    )
    body += (
        "\nWorkload: single + cons2 + simple-dual + generic(f=2) builds "
        "\nplus 200 mixed-fault oracle queries, best of "
        f"{rounds} rounds per engine, snapshot cache cleared per round."
        "\n'~' marks a legacy time estimated from the sub-ladder "
        "power-law fit (the lex arm is not run at that size)."
    )
    emit("E10-engines", "kernel engines vs legacy engine", body)
    largest = entries[-1]
    # The kernel-vs-legacy floor is certified against a *measured*
    # legacy baseline — asserting against an extrapolated one would let
    # fit error fail (or pass) the build.  Est rungs still certify the
    # kernel-vs-kernel floor, which never involves the fit.
    largest_measured = next(
        (e for e in reversed(entries) if not e["legacy_estimated"]), largest
    )
    emit_json(
        "e10",
        {
            "experiment": "e10_runtime_engine_comparison",
            "workload": "single+cons2+simple_dual+generic_f2+200 queries",
            "engines": arms,
            "rounds": rounds,
            "ladder": entries,
            "largest": largest,
            "largest_measured": largest_measured,
            "required_min_speedup": min_speedup,
            "required_min_bulk_vs_csr": min_bulk_vs_csr,
        },
    )
    for e in kernels:
        assert largest_measured["speedup_vs_legacy"][e] >= min_speedup, (
            f"{e} speedup {largest_measured['speedup_vs_legacy'][e]:.2f}x at "
            f"n={largest_measured['n']} fell below the required {min_speedup}x"
        )
    if min_bulk_vs_csr and largest["bulk_vs_csr"] is not None:
        assert largest["bulk_vs_csr"] >= min_bulk_vs_csr, (
            f"lex-bulk fell to {largest['bulk_vs_csr']:.2f}x of lex-csr at "
            f"n={largest['n']} (required {min_bulk_vs_csr}x)"
        )
    g_small = erdos_renyi(ladder[0][0], ladder[0][1], seed=SEED)
    q_small = sample_queries(g_small, 2, 50, seed=3)
    benchmark.pedantic(
        lambda: _suite(g_small, q_small, "lex-csr"), rounds=1, iterations=1
    )


def test_e10_cores_axis(benchmark):
    """Process-pool scaling of the O(n·m) sensitivity tabulation.

    Rebuilds :class:`SingleFaultDistanceOracle` — one restricted BFS
    per tree edge, the preprocessing pass E10's query arm depends on —
    at every worker count of :func:`_common.jobs_axis`, asserting the
    tabulated distance vectors are identical to the serial build and
    applying ``REPRO_BENCH_MIN_PARALLEL_SCALING`` only to arms the
    host has cores for.
    """
    n, p = 400, 0.02
    g = erdos_renyi(n, p, seed=SEED)
    rounds = int(os.environ.get("REPRO_BENCH_ROUNDS", "2"))
    axis = jobs_axis()
    floor = scaling_floor()
    cores = os.cpu_count() or 1
    rows = []
    arms = []
    base_tables = None
    base_seconds = None
    for j in axis:
        best = float("inf")
        best_stats = {}
        oracle = None
        for _ in range(rounds):
            cold_cache()
            t0 = time.perf_counter()
            oracle = SingleFaultDistanceOracle(g, 0, jobs=j)
            elapsed = time.perf_counter() - t0
            if elapsed < best:
                best = elapsed
                best_stats = parallel.last_run_stats() if j > 1 else {}
        tables = {e: list(t) for e, t in oracle._tables.items()}
        if base_tables is None:
            base_tables = tables
            base_seconds = best
        else:
            assert tables == base_tables, (
                f"jobs={j} sensitivity tables diverged from the serial build"
            )
        scaling = base_seconds / best if best else 0.0
        effective = best_stats.get("effective_jobs", 1)
        degraded = best_stats.get("degraded")
        enforced = bool(floor) and j > 1 and cores >= j and not degraded
        rows.append(
            [j, effective, f"{best:.3f}", f"{scaling:.2f}x",
             "yes" if enforced else "no"]
        )
        arms.append(
            {
                "jobs": j,
                "effective_jobs": effective,
                "seconds": best,
                "scaling_vs_serial": scaling,
                "degraded": degraded,
                "floor_enforced": enforced,
            }
        )
        if enforced:
            assert scaling >= floor, (
                f"sensitivity tabulation scaled only {scaling:.2f}x at "
                f"jobs={j} on a {cores}-core host (required {floor}x)"
            )
    body = table(["jobs", "effective", "seconds", "scaling", "floor"], rows)
    body += (
        f"\nSingleFaultDistanceOracle preprocessing ({oracle.preprocessing_tables} "
        f"tree-edge tables) on er n={n} p={p}, best of {rounds} rounds; "
        f"\ntables identical across arms; host has {cores} core(s), "
        f"floor={floor or 'off'}."
    )
    emit("E10-cores", "sensitivity-oracle preprocessing cores axis", body)
    emit_json(
        "e10_cores",
        {
            "experiment": "e10_cores_axis",
            "workload": ["er", n, p],
            "cores": cores,
            "rounds": rounds,
            "floor": floor,
            "arms": arms,
        },
    )
    benchmark.pedantic(
        lambda: SingleFaultDistanceOracle(g, 0, jobs=1), rounds=1, iterations=1
    )
