"""E18 — topology churn: incremental deltas vs rebuild-from-scratch.

A deployed oracle does not get to assume a frozen network: links flap,
capacity is re-leased, the ER scenario drifts one edge at a time.  PR 8
added the delta-aware update path — :meth:`repro.core.graph.Graph
.apply_delta` producing an incrementally patched CSR snapshot
(:class:`~repro.core.csr.DeltaCSRGraph`), with the survival
certificates of :mod:`repro.core.delta` migrating every cached answer
the delta provably did not change.  This benchmark prices that path
against the only alternative the pre-delta system had: throw the state
away and rebuild.

**Churn loop vs rebuild loop** (the headline, enforced by CI).  Per
ladder rung, a deterministic script of ``k`` single-edge updates (each
removes one random edge and inserts one random non-edge, keeping ``m``
constant) is absorbed two ways, each followed by the same probe set —
full distance vectors from 8 sources plus two 64-target point-query
fans, i.e. the read traffic a serving window sees between updates:

* *incremental* — one long-lived graph: ``apply_delta`` per update,
  then the probes; the engine and oracle stay bound and the snapshot
  cache migrates across each delta;
* *rebuild* — per update: drop the cache, build a fresh
  :class:`~repro.core.graph.Graph` over the mutated edge set, re-warm
  the same engine/oracle state, then the probes.

Both arms must produce bit-identical probe results at every step
(asserted before any timing is trusted), and at the ``n >= 1000``
rungs the incremental arm's speedup must meet
``REPRO_BENCH_MIN_CHURN_VS_REBUILD``.

**Migration accounting.**  The incremental arm also reports the
survival-certificate counters (``delta_survived`` / ``delta_evicted``
/ ``delta_rechecked``) accumulated across the script — the mechanism
column behind the speedup: most warm entries carry over, few are
recomputed.

Environment knobs (used by CI's smoke run):

``REPRO_E18_SIZES``
    Comma list of ``n:p`` ER ladder rungs (default
    ``200:0.035,1000:0.008``).
``REPRO_E18_UPDATES``
    Updates ``k`` per churn script (default 32).
``REPRO_BENCH_MIN_CHURN_VS_REBUILD``
    Required incremental-vs-rebuild speedup at the ``n >= 1000`` rungs
    (default 0 = informational; CI's nightly leg enforces 5.0, the
    smoke leg 2.0 at its n=200 rung — smoke applies the floor to its
    largest rung regardless of size via the same knob).
``REPRO_BENCH_ROUNDS``
    Best-of rounds per timed arm (default 2).
"""

import os
import random
import time

from repro.core.canonical import DistanceOracle, make_engine
from repro.core.graph import Graph
from repro.core.snapshot_cache import shared_cache

from _common import (
    RESULTS_DIR,
    cold_cache,
    emit,
    emit_json,
    parse_workloads,
    table,
    workload_graph,
    workload_label,
)

VEC_SOURCES = 8
PT_SOURCES = 2
PT_TARGETS = 64
COUNTERS = ("delta_survived", "delta_evicted", "delta_rechecked")


def _sizes():
    """The churn ladder, via the shared benchmark workload grammar.

    ``REPRO_E18_SIZES`` keeps its legacy bare ``n:p`` ER form and
    additionally accepts every :func:`_common.parse_workload` spec, so
    topology-corpus graphs (``topo:abilene.graphml``) can be churned
    with the same script machinery.
    """
    return parse_workloads("REPRO_E18_SIZES", "200:0.035,1000:0.008")


def _updates():
    return max(1, int(os.environ.get("REPRO_E18_UPDATES", "32")))


def _rounds():
    return max(1, int(os.environ.get("REPRO_BENCH_ROUNDS", "2")))


def _script(n, edges, k, seed):
    """k deterministic single-edge swaps (remove one, insert one)."""
    rng = random.Random(seed)
    eset = set(edges)
    steps = []
    for _ in range(k):
        out_edge = rng.choice(sorted(eset))
        while True:
            u, v = rng.sample(range(n), 2)
            in_edge = (min(u, v), max(u, v))
            if in_edge not in eset and in_edge != out_edge:
                break
        eset.remove(out_edge)
        eset.add(in_edge)
        steps.append((in_edge, out_edge))
    return steps


def _warm(graph, n):
    """Serve-ready state: engine searches, distance vectors, pt fans."""
    engine = make_engine(graph)
    oracle = DistanceOracle(graph)
    targets = range(0, n, max(1, n // PT_TARGETS))
    for s in range(VEC_SOURCES):
        engine.search(s)
        oracle.distances_from(s)
    for s in range(PT_SOURCES):
        for t in targets:
            oracle.distance(s, t)
    return engine, oracle


def _probe(oracle, n):
    """The read traffic between updates; returns a comparable signature."""
    targets = range(0, n, max(1, n // PT_TARGETS))
    sig = [tuple(oracle.distances_from(s)) for s in range(VEC_SOURCES)]
    for s in range(PT_SOURCES):
        sig.append(tuple(oracle.distance(s, t) for t in targets))
    return sig


def _incremental_arm(n, base_edges, steps):
    """One long-lived graph absorbing the whole script."""
    cold_cache()
    g = Graph(n, base_edges)
    _, oracle = _warm(g, n)
    before = {k: shared_cache().stats().get(k, 0) for k in COUNTERS}
    sigs = []
    t0 = time.perf_counter()
    for in_edge, out_edge in steps:
        g.apply_delta(adds=[in_edge], removes=[out_edge])
        sigs.append(_probe(oracle, n))
    elapsed = time.perf_counter() - t0
    after = shared_cache().stats()
    counters = {k: after.get(k, 0) - before[k] for k in COUNTERS}
    return elapsed, sigs, counters


def _rebuild_arm(n, base_edges, steps):
    """Per update: cold cache, fresh graph, re-warm, same probes."""
    eset = set(base_edges)
    sigs = []
    t0 = time.perf_counter()
    for in_edge, out_edge in steps:
        eset.remove(out_edge)
        eset.add(in_edge)
        cold_cache()
        g = Graph(n, sorted(eset))
        _, oracle = _warm(g, n)
        sigs.append(_probe(oracle, n))
    elapsed = time.perf_counter() - t0
    return elapsed, sigs


def test_e18_churn(benchmark):
    rounds = _rounds()
    k = _updates()
    floor = float(os.environ.get("REPRO_BENCH_MIN_CHURN_VS_REBUILD", "0"))
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    rows = []
    entries = []
    sizes = _sizes()
    for kind, n, arg in sizes:
        g0 = workload_graph(kind, n, arg, seed=18)
        n = n if n is not None else g0.n  # topo workloads resolve n late
        base_edges = sorted(g0.edges())
        steps = _script(n, base_edges, k, seed=18)

        best_inc = float("inf")
        counters = {key: 0 for key in COUNTERS}
        sigs_inc = None
        for _ in range(rounds):
            t, sigs_inc, counters = _incremental_arm(n, base_edges, steps)
            best_inc = min(best_inc, t)
        best_reb = float("inf")
        for _ in range(rounds):
            t, sigs_reb = _rebuild_arm(n, base_edges, steps)
            best_reb = min(best_reb, t)
            assert sigs_reb == sigs_inc  # identity before speed, every step
        speedup = best_reb / best_inc if best_inc else float("inf")

        entry = {
            "workload": workload_label(kind, n, arg),
            "n": n,
            "p": arg if kind == "er" else None,
            "m": len(base_edges),
            "updates": k,
            "incremental_s": best_inc,
            "rebuild_s": best_reb,
            "speedup": speedup,
            "per_update_incremental_ms": 1000.0 * best_inc / k,
            "per_update_rebuild_ms": 1000.0 * best_reb / k,
            **counters,
        }
        entries.append(entry)
        rows.append(
            [
                n,
                len(base_edges),
                k,
                f"{1000.0 * best_inc:.1f}",
                f"{1000.0 * best_reb:.1f}",
                f"{speedup:.1f}x",
                counters["delta_survived"],
                counters["delta_evicted"],
                counters["delta_rechecked"],
            ]
        )

    body = table(
        [
            "n",
            "m",
            "updates",
            "incremental ms",
            "rebuild ms",
            "speedup",
            "survived",
            "evicted",
            "rechecked",
        ],
        rows,
    )
    note = (
        "per update: one edge swap + 8 distance vectors + 2x64 point fans; "
        "bit-identical probe results asserted between arms at every step"
    )
    emit("E18", "topology churn (incremental deltas vs rebuilds)", body + "\n" + note)
    emit_json(
        "e18",
        {
            "experiment": "e18_churn",
            "updates": k,
            "rounds": rounds,
            "probe_vec_sources": VEC_SOURCES,
            "probe_pt_fans": [PT_SOURCES, PT_TARGETS],
            "min_churn_vs_rebuild_floor": floor,
            "entries": entries,
        },
    )
    if floor:
        gated = [e for e in entries if e["n"] >= 1000] or entries[-1:]
        for entry in gated:
            assert entry["speedup"] >= floor, (
                f"incremental churn only {entry['speedup']:.1f}x faster "
                f"than rebuilds at n={entry['n']} (required {floor}x)"
            )

    # pytest-benchmark bookkeeping: one cheap representative round (the
    # real measurements above are manual best-of timings).
    kind0, n0, arg0 = sizes[0]
    g_small = workload_graph(kind0, n0, arg0, seed=18)
    n0 = n0 if n0 is not None else g_small.n
    edges_small = sorted(g_small.edges())
    step_small = _script(n0, edges_small, 1, seed=18)
    benchmark.pedantic(
        lambda: _incremental_arm(n0, edges_small, step_small),
        rounds=1,
        iterations=1,
    )
