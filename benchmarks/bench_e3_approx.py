"""E3 — Theorem 1.3: the greedy set-cover approximation vs the optimum.

Regenerates the approximation claim as a table: greedy structure size
against the exact per-vertex-cover sandwich ``[Σ mincover / 2,
Σ mincover]`` of the true optimum, on instances where the optimum is
*sparse* (trees plus few chords) — exactly where Thm 1.3 beats the
worst-case universal bound — plus random graphs for contrast.
"""

import math

import pytest

from repro.ftbfs import build_approx_ftmbfs, optimum_bounds, verify_structure
from repro.generators import erdos_renyi, random_tree, tree_plus_chords

from _common import emit, table

CASES = [
    ("tree", lambda: random_tree(40, seed=1), 1),
    ("tree+3 chords", lambda: tree_plus_chords(40, 3, seed=2), 1),
    ("tree+8 chords", lambda: tree_plus_chords(40, 8, seed=3), 1),
    ("ER n=24 p=.2", lambda: erdos_renyi(24, 0.2, seed=4), 1),
    ("ER n=16 p=.25 f=2", lambda: erdos_renyi(16, 0.25, seed=5), 2),
    ("tree+4 chords f=2", lambda: tree_plus_chords(18, 4, seed=6), 2),
]


def test_e3_approximation_quality(benchmark):
    rows = []
    for label, make, f in CASES:
        g = make()
        h = build_approx_ftmbfs(g, [0], f)
        verify_structure(h)
        lower, upper = optimum_bounds(g, [0], f)
        ratio = h.size / max(lower, 1.0)
        universal = g.n ** (2 - 1 / (f + 1))
        rows.append(
            [
                label,
                f,
                g.m,
                h.size,
                f"{lower:.1f}",
                upper,
                f"{ratio:.2f}",
                f"{universal:.0f}",
            ]
        )
        # Thm 1.3 guarantee (vs the worst-case ln|U| factor, with the
        # factor-2 slack of the lower bound):
        log_bound = max(1.0, math.log(h.stats["universe_pairs"]) + 1)
        assert h.size <= 2 * log_bound * lower + 1
        # and on sparse instances greedy beats the universal bound:
        if "tree" in label:
            assert h.size < universal

    body = table(
        [
            "instance",
            "f",
            "m",
            "greedy |H|",
            "OPT lower",
            "OPT upper",
            "greedy/lower",
            "n^(2-1/(f+1))",
        ],
        rows,
    )
    emit("E3", "greedy set-cover approximation (Thm 1.3)", body)

    g = tree_plus_chords(40, 8, seed=3)
    benchmark.pedantic(
        lambda: build_approx_ftmbfs(g, [0], 1), rounds=2, iterations=1
    )
