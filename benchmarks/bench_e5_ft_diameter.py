"""E5 — Observation 1.6: small FT-diameter graphs have O(D_f^f · n) structures.

Regenerates the observation as a table on dense random graphs (whose
2-FT-diameter stays tiny): exact generic structure size vs the
``D_f^f · n`` bound.
"""

import pytest

from repro.ftbfs import (
    build_generic_ftbfs,
    ft_diameter,
    observation_1_6_bound,
    verify_structure_sampled,
)
from repro.generators import erdos_renyi

from _common import emit, table

CASES = [(20, 0.5), (30, 0.4), (40, 0.3), (50, 0.25)]


def test_e5_ft_diameter_bound(benchmark):
    rows = []
    for n, p in CASES:
        g = erdos_renyi(n, p, seed=n)
        d2 = ft_diameter(g, 0, 2)
        bound = observation_1_6_bound(g, 0, 2)
        h = build_generic_ftbfs(g, 0, 2)
        verify_structure_sampled(h, samples=60, seed=n)
        rows.append(
            [n, g.m, d2, bound, h.size, f"{h.size / bound:.3f}"]
        )
        assert h.size <= bound, f"Obs 1.6 violated at n={n}"

    body = table(
        ["n", "m", "D_2(G)", "D_2^2 * n", "|E(H)| exact", "ratio"], rows
    )
    emit("E5", "FT-diameter size bound (Obs 1.6)", body)

    g = erdos_renyi(30, 0.4, seed=30)
    benchmark.pedantic(
        lambda: ft_diameter(g, 0, 2), rounds=2, iterations=1
    )
