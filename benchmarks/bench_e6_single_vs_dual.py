"""E6 — single- vs dual-failure structure sizes (O(n^{3/2}) vs O(n^{5/3})).

Regenerates the comparison between the [10] baseline and the paper's
construction on both random and adversarial inputs: the dual structure
is denser, and on the adversarial families each matches its own bound's
shape (f=1 inputs drive the single-failure cost, f=2 inputs the dual).
"""

import pytest

from repro.analysis import fit_power_law
from repro.ftbfs import build_cons2ftbfs, build_single_ftbfs
from repro.generators import erdos_renyi
from repro.lowerbound import build_lower_bound_graph

from _common import emit, table

ER_SWEEP = [60, 100, 150, 220]


def test_e6_single_vs_dual(benchmark):
    rows = []
    single_sizes, dual_sizes = [], []
    for n in ER_SWEEP:
        g = erdos_renyi(n, 5.0 / n, seed=1)
        h1 = build_single_ftbfs(g, 0)
        h2 = build_cons2ftbfs(g, 0)
        single_sizes.append(h1.size)
        dual_sizes.append(h2.size)
        rows.append(
            ["ER(5/n)", n, h1.size, h2.size, f"{h2.size / h1.size:.2f}"]
        )
        assert h1.size <= h2.size + 2  # dual protection costs more

    # adversarial: G*_1 stresses f=1, G*_2 stresses f=2
    adv1_sizes, adv1_ns = [], [120, 320, 640]
    for n in adv1_ns:
        inst = build_lower_bound_graph(n, 1)
        h1 = build_single_ftbfs(inst.graph, inst.sources[0])
        adv1_sizes.append(h1.size)
        rows.append(["G*_1", n, h1.size, "-", ""])
    adv2_sizes, adv2_ns = [], [92, 250]
    for n in adv2_ns:
        inst = build_lower_bound_graph(n, 2)
        h2 = build_cons2ftbfs(inst.graph, inst.sources[0])
        adv2_sizes.append(h2.size)
        rows.append(["G*_2", n, "-", h2.size, ""])

    fit1 = fit_power_law(adv1_ns, adv1_sizes)
    fit2 = fit_power_law(adv2_ns, adv2_sizes)
    body = table(["family", "n", "single |H|", "dual |H|", "dual/single"], rows)
    body += (
        f"\nG*_1 single-failure exponent: {fit1.alpha:.3f} (theory 1.5)"
        f"\nG*_2 dual-failure exponent:   {fit2.alpha:.3f} (theory 5/3 ~ 1.667)"
    )
    emit("E6", "single vs dual structure size ([10] vs Thm 1.1)", body)

    assert abs(fit1.alpha - 1.5) < 0.35
    assert abs(fit2.alpha - 5 / 3) < 0.35
    # the dual family is asymptotically denser than the single family
    assert fit2.alpha > fit1.alpha - 0.1

    g = erdos_renyi(150, 5.0 / 150, seed=1)
    benchmark.pedantic(
        lambda: build_single_ftbfs(g, 0), rounds=3, iterations=1
    )
