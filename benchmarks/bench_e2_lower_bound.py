"""E2 — Theorem 1.2 / Figs. 10-12: the Ω(σ^{1-1/(f+1)} n^{2-1/(f+1)}) family.

Regenerates the lower-bound mass as a measured series: the number of
*provably forced* bipartite edges of ``G*_f`` for f = 1, 2, 3 and for a
σ sweep, with empirical exponents next to the theory, plus witness
verification on a sample of certificates.
"""

import random

import pytest

from repro.analysis import fit_power_law
from repro.lowerbound import (
    build_lower_bound_graph,
    check_witness,
    forced_edge_witnesses,
)

from _common import emit, table

SWEEPS = {
    1: [80, 160, 320, 640],
    2: [100, 250, 520],
    3: [240, 1000],
}
THEORY = {1: 1.5, 2: 5 / 3, 3: 1.75}


def test_e2_forced_edges_scaling(benchmark):
    rows = []
    fits = {}
    for f, ns in SWEEPS.items():
        sizes = []
        for n in ns:
            inst = build_lower_bound_graph(n, f)
            forced = inst.forced_lower_bound()
            sizes.append(forced)
            rows.append(
                [f, 1, n, inst.d, forced, f"{forced / n ** (2 - 1 / (f + 1)):.3f}"]
            )
            # verify a sample of the certificates
            rng = random.Random(n)
            ws = forced_edge_witnesses(inst)
            sample = rng.sample(ws, min(25, len(ws)))
            assert all(check_witness(inst, e, s, faults) for e, s, faults in sample)
        fits[f] = fit_power_law(ns, sizes)

    # sigma sweep at f = 1, fixed n
    sigma_rows = []
    n = 480
    sigma_sizes = []
    sigmas = [1, 2, 4]
    for sigma in sigmas:
        inst = build_lower_bound_graph(n, 1, sigma=sigma)
        forced = inst.forced_lower_bound()
        sigma_sizes.append(forced)
        rows.append([1, sigma, n, inst.d, forced, ""])
    sigma_fit = fit_power_law(sigmas, sigma_sizes)

    body = table(
        ["f", "sigma", "n", "d", "forced edges", "forced/n^(2-1/(f+1))"], rows
    )
    for f, fit in fits.items():
        body += (
            f"\nf={f}: empirical exponent {fit.alpha:.3f} "
            f"(theory {THEORY[f]:.3f})"
        )
    body += (
        f"\nsigma exponent at f=1: {sigma_fit.alpha:.3f} "
        f"(theory 1 - 1/(f+1) = 0.5)"
    )
    emit("E2", "forced lower-bound mass of G*_f (Thm 1.2)", body)

    for f, fit in fits.items():
        assert abs(fit.alpha - THEORY[f]) < 0.45, (f, fit.alpha)
    # more sources force more edges, sublinearly
    assert sigma_sizes[0] < sigma_sizes[1] < sigma_sizes[2]

    benchmark.pedantic(
        lambda: build_lower_bound_graph(320, 2).forced_lower_bound(),
        rounds=2,
        iterations=1,
    )
