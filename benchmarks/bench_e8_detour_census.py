"""E8 — Figs. 3-4: detour configuration census on real runs.

Regenerates the paper's taxonomy of pairwise detour configurations
(Definition 3.7 + the fw/rev refinement) as measured frequencies over
Cons2FTBFS runs, and re-checks the structural claims (3.8, 3.9: nested /
non-nested pairs are independent) on every counted pair.
"""

import pytest

from repro.analysis import detour_census
from repro.ftbfs import build_cons2ftbfs
from repro.generators import erdos_renyi, tree_plus_chords
from repro.replacement.detours import DetourConfiguration, classify_pair

from _common import emit, table

CASES = [
    ("ER n=60 p=.1", lambda: erdos_renyi(60, 0.1, seed=8)),
    ("chords n=60", lambda: tree_plus_chords(60, 35, seed=9)),
    ("chords n=100", lambda: tree_plus_chords(100, 55, seed=10)),
]


def test_e8_detour_configuration_census(benchmark):
    all_rows = []
    for label, make in CASES:
        g = make()
        h = build_cons2ftbfs(g, 0, keep_records=True)
        census = detour_census(h)
        total = max(1, sum(census.values()))
        for cfg in DetourConfiguration:
            count = census[cfg]
            if count or cfg in (
                DetourConfiguration.NON_NESTED,
                DetourConfiguration.NESTED,
            ):
                all_rows.append(
                    [label, cfg.value, count, f"{100.0 * count / total:.1f}%"]
                )
        # Claims 3.8/3.9 on every pair of every target:
        for rec in h.stats["records"]:
            detours = rec.detours
            for i in range(len(detours)):
                for j in range(i + 1, len(detours)):
                    pair = classify_pair(rec.pi_path, detours[i], detours[j])
                    if pair.configuration in (
                        DetourConfiguration.NON_NESTED,
                        DetourConfiguration.NESTED,
                    ):
                        assert not pair.dependent

    body = table(["graph", "configuration", "pairs", "share"], all_rows)
    emit("E8", "detour configuration census (Figs. 3-4)", body)

    g = tree_plus_chords(60, 35, seed=9)
    benchmark.pedantic(
        lambda: detour_census(build_cons2ftbfs(g, 0, keep_records=True)),
        rounds=2,
        iterations=1,
    )
