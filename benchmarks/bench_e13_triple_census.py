"""E13 (extension) — 'Beyond two faults': triple-failure class census.

The paper closes Section 3 by sketching the f=3 taxonomy — (π,π,π),
(π,π,D1), (π,D1,D1), (π,D1,D2) — and notes that understanding these
interactions is the missing step toward an f ≥ 3 upper bound.  This
experiment measures how the classes are actually populated on real
graphs, and how often each class forces a *new* structure edge, using
the exact sequential triple builder.
"""

import pytest

from repro.ftbfs import verify_structure_sampled
from repro.generators import erdos_renyi, tree_plus_chords
from repro.replacement.triple import TripleClass, build_triple_ftbfs, census_table

from _common import emit, table

CASES = [
    ("ER n=16 p=.25", lambda: erdos_renyi(16, 0.25, seed=21)),
    ("ER n=22 p=.18", lambda: erdos_renyi(22, 0.18, seed=22)),
    ("chords n=20", lambda: tree_plus_chords(20, 10, seed=23)),
]


def test_e13_triple_class_census(benchmark):
    rows = []
    for label, make in CASES:
        g = make()
        h = build_triple_ftbfs(g, 0)
        verify_structure_sampled(h, samples=80, seed=1)
        for cls_name, enumerated, new_ending in census_table(h):
            rows.append([label, cls_name, enumerated, new_ending])
        rows.append([label, "TOTAL |H| / m", h.size, g.m])
        # the structure stays subquadratic even at f=3 on these inputs
        assert h.size <= g.m

    body = table(
        ["graph", "triple class", "enumerated", "new-ending"], rows
    )
    body += (
        "\nReading: the overwhelming majority of triples are satisfied by "
        "\nedges already present, and nearly all *new-ending* triples fall "
        "\nin class (π,D1,D2) — empirical confirmation that the D1/D2 "
        "\ndetour interaction the paper singles out as the obstacle to an "
        "\nf>=3 upper bound is exactly where the new structural mass lives."
    )
    emit("E13", "triple-failure class census (Sec. 3, beyond two faults)", body)

    g = erdos_renyi(14, 0.25, seed=24)
    benchmark.pedantic(
        lambda: build_triple_ftbfs(g, 0), rounds=2, iterations=1
    )
