"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one table/figure-equivalent of the paper
(see DESIGN.md §3).  The table is printed to stdout *and* persisted to
``benchmarks/results/<exp>.txt`` so ``pytest benchmarks/
--benchmark-only`` leaves a full record behind regardless of output
capture.

Benchmarks that measure performance additionally persist
machine-readable results via :func:`emit_json` as
``benchmarks/results/BENCH_<exp>.json`` (graph sizes, wall times, edge
counts, speedups), so the perf trajectory across PRs can be tracked and
diffed mechanically instead of by reading text tables.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Iterable, List, Sequence

from repro.analysis import format_table
from repro.core.canonical import ENGINES
from repro.core.snapshot_cache import shared_cache
from repro.generators import erdos_renyi, tree_plus_chords


def _results_dir() -> pathlib.Path:
    """Where benchmark outputs land (``REPRO_RESULTS_DIR`` overrides).

    The default is ``benchmarks/results/`` inside the checkout; on
    read-only checkouts (CI caches, mounted images) set
    ``REPRO_RESULTS_DIR`` to any writable directory and every
    ``<exp>.txt`` / ``BENCH_<exp>.json`` goes there instead — the same
    knob :func:`repro.core.io.resolve_out` honors for CLI outputs.
    """
    override = os.environ.get("REPRO_RESULTS_DIR", "").strip()
    if override:
        return pathlib.Path(override)
    return pathlib.Path(__file__).parent / "results"


RESULTS_DIR = _results_dir()


#: Where the checked-in topology corpus lives (``topo:`` workloads).
TOPOLOGIES_DIR = pathlib.Path(__file__).parent / "topologies"


def parse_workload(item: str):
    """One benchmark workload spec → a ``(kind, n, arg)`` triple.

    The one graph-source grammar every benchmark shares (E16's
    ``REPRO_E16_SIZES``, E18's ``REPRO_E18_SIZES``, E19's corpus
    entries):

    * ``chords:<n>:<chords>`` — random tree plus chords;
    * ``er:<n>:<p>`` — Erdős–Rényi;
    * ``<n>:<p>`` — bare ER shorthand (E18's legacy form);
    * ``topo:<ref>`` — a corpus topology: a file under
      ``benchmarks/topologies/`` (or any path) or a generator spec
      like ``fattree:k=4`` (see :mod:`repro.core.topology`); ``n`` is
      ``None`` until the graph is built.
    """
    parts = item.split(":")
    if parts[0] == "topo":
        ref = ":".join(parts[1:])
        if not ref:
            raise ValueError(f"workload {item!r} names no topology")
        return ("topo", None, ref)
    if len(parts) == 2:  # bare "n:p" ER shorthand
        return ("er", int(parts[0]), float(parts[1]))
    kind, n, arg = parts[:3]
    if kind == "chords":
        return ("chords", int(n), int(float(arg)))
    if kind == "er":
        return ("er", int(n), float(arg))
    raise ValueError(f"unknown workload kind {kind!r} in {item!r}")


def parse_workloads(env_var: str, default: str) -> List[tuple]:
    """The workload ladder of one benchmark (``env_var`` overrides)."""
    spec = os.environ.get(env_var, default)
    return [parse_workload(item.strip()) for item in spec.split(",") if item.strip()]


def workload_graph(kind: str, n, arg, seed: int = 20):
    """Materialize one :func:`parse_workload` triple into a graph.

    ``topo`` workloads resolve relative file references against
    :data:`TOPOLOGIES_DIR` so specs like ``topo:abilene.graphml`` work
    from any working directory; ``seed`` only affects the random
    families.
    """
    if kind == "topo":
        from repro.core.topology import load_topology

        return load_topology(arg, base_dir=TOPOLOGIES_DIR).graph
    if kind == "chords":
        return tree_plus_chords(n, int(arg), seed=seed)
    if kind == "er":
        return erdos_renyi(n, arg, seed=seed)
    raise ValueError(f"unknown workload kind {kind!r}")


def workload_label(kind: str, n, arg) -> str:
    """Human-readable workload label for benchmark tables."""
    if kind == "topo":
        return f"topo {arg}"
    return f"{kind} n={n}"


def jobs_axis() -> List[int]:
    """Worker counts the parallel benchmarks sweep (``REPRO_BENCH_JOBS``).

    A comma list like ``1,2,4``; always starts with 1 (the serial
    baseline the scaling is measured against) and deduplicates while
    preserving order.  Defaults to ``[1, 2]`` — the smallest sweep that
    exercises the process-pool axis — so local runs stay cheap; CI's
    nightly leg widens it to ``1,4``.
    """
    raw = os.environ.get("REPRO_BENCH_JOBS", "1,2")
    axis: List[int] = [1]
    for part in raw.split(","):
        try:
            j = int(part.strip())
        except ValueError:
            continue
        if j > 1 and j not in axis:
            axis.append(j)
    return axis


def scaling_floor() -> float:
    """Minimum accepted parallel speedup (``REPRO_BENCH_MIN_PARALLEL_SCALING``).

    0 (the default) records scaling without enforcing it — the right
    behavior on shared or single-core boxes where pool overhead swamps
    the win.  CI sets it (1.4 on the 2-core smoke leg, 1.6 on the
    4-core nightly) to turn the measurement into a regression gate.
    Callers must apply the floor only when the host actually has at
    least as many cores as the measured jobs arm.
    """
    try:
        return float(os.environ.get("REPRO_BENCH_MIN_PARALLEL_SCALING", "0"))
    except ValueError:
        return 0.0


def engine_arms() -> List[str]:
    """The engines perf benchmarks compare, in baseline-first order.

    Legacy ``lex`` is the pre-kernel baseline every speedup is measured
    against; ``lex-csr`` is the pooled python kernel; ``lex-bulk`` (the
    vectorized numpy kernel) joins only where numpy is installed, so
    benchmarks degrade to a two-way comparison instead of erroring.
    """
    return [e for e in ("lex", "lex-csr", "lex-bulk") if e in ENGINES]


def cold_cache() -> None:
    """Drop the process-wide snapshot cache before a timed arm.

    Engines and oracles share restricted-search memos across instances
    (see :mod:`repro.core.snapshot_cache`); a benchmark that times
    engine B after engine A on the same graph would otherwise measure
    A's warm cache, not B.
    """
    shared_cache().clear()


def emit(exp_id: str, title: str, body: str) -> None:
    """Print an experiment report and persist it under results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    report = f"== {exp_id}: {title} ==\n{body}\n"
    print("\n" + report)
    (RESULTS_DIR / f"{exp_id}.txt").write_text(report)


def emit_json(exp_id: str, payload: dict) -> pathlib.Path:
    """Persist machine-readable benchmark results next to the text table.

    Writes ``results/BENCH_<exp>.json`` and returns the path.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{exp_id}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Format a table body (thin wrapper for import convenience)."""
    return format_table(headers, rows)
