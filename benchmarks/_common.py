"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one table/figure-equivalent of the paper
(see DESIGN.md §3).  The table is printed to stdout *and* persisted to
``benchmarks/results/<exp>.txt`` so ``pytest benchmarks/
--benchmark-only`` leaves a full record behind regardless of output
capture.
"""

from __future__ import annotations

import pathlib
from typing import Iterable, Sequence

from repro.analysis import format_table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(exp_id: str, title: str, body: str) -> None:
    """Print an experiment report and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    report = f"== {exp_id}: {title} ==\n{body}\n"
    print("\n" + report)
    (RESULTS_DIR / f"{exp_id}.txt").write_text(report)


def table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Format a table body (thin wrapper for import convenience)."""
    return format_table(headers, rows)
