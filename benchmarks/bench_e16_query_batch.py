"""E16 — batched point-query pipeline vs the per-pair scalar path.

PR 1 made every restricted search pooled and allocation-free, PR 2
vectorized full sweeps; the feasibility *point queries* that dominate
``Cons2FTBFS`` stayed scalar-per-pair.  This benchmark quantifies the
batched point-query pipeline (:mod:`repro.core.query_batch`) that
replaced them:

**Feasibility workload** (the headline, enforced by CI).  For each
ladder entry, the construction's plannable step-2/3 feasibility probes
(:func:`repro.ftbfs.cons2ftbfs.feasibility_probes`) are answered three
ways, cold-cache each time:

* *batched (numpy)* — the plan → dedupe → grouped-execution pipeline
  under the ``lex-bulk`` oracle with ``REPRO_C_KERNEL=off``: step-2
  probes first try their zero-traversal step-1 certificates, the rest
  go through one :class:`~repro.core.query_batch.PointQueryBatch`
  execution (tree-repair fast path, shared sweeps, cross-query
  multi-pair kernel on the numpy label tables);
* *batched (lex-c)* — the identical pipeline under the ``lex-c``
  oracle, whose multi-pair and shared-sweep strategies execute in the
  compiled C kernel (skipped, and recorded as such, on hosts where the
  C kernel cannot load);
* *per-pair scalar* — the identical probes looped through scalar
  ``oracle.distance`` point queries (the pre-batch code path, i.e.
  ``REPRO_QUERY_BATCH=0``'s behavior).

Each batched arm also records which kernel tier actually served its
multi-pair queries and sweeps
(:func:`repro.core.bulk.kernel_dispatch_stats`), so the auto-dispatch
decision is part of the persisted payload.  The numpy speedup of the
**first** ladder entry (the headline workload) must meet
``REPRO_BENCH_MIN_BATCH_VS_SCALAR``; the C arm must meet
``REPRO_BENCH_MIN_BATCH_VS_SCALAR_C`` on *every* workload.

**Batch-size curve.**  ``distances_bulk`` (one fault set, one source,
many targets) against per-pair scalar queries across batch sizes — the
per-pair latency curve that shows where batching starts paying.

**End-to-end builds.**  ``build_cons2ftbfs`` wall time on the headline
workload across three arms — *speculative* (the full pipeline:
batched wave-1 probes plus the speculative dependency-aware step-3
wave of :class:`~repro.core.query_batch.SpeculativeBatch`), *scalar
step 3* (``REPRO_SPEC_BATCH=0``: batched wave 1, sequential scalar
``d_restricted`` probes) and *fully scalar* (``REPRO_QUERY_BATCH=0``,
the pre-batch pipeline) — asserting byte-identical structures and
reporting the speculation hit/discard counters per arm, so mispredict
rates are visible next to the wall times.

Environment knobs (used by CI's smoke run):

``REPRO_E16_SIZES``
    Comma list of ``kind:n:arg`` workloads, ``kind`` in
    ``chords`` (``arg`` = chord count) / ``er`` (``arg`` = edge
    probability).  Default ``chords:1000:300,er:1000:0.008`` — a
    sparse tree-plus-chords instance (deep canonical trees, the regime
    FT-BFS structures are built for) plus the E10 ER family.  The
    first entry is the headline the speedup floor applies to.
``REPRO_BENCH_MIN_BATCH_VS_SCALAR``
    Required batched-vs-scalar speedup on the headline feasibility
    workload (default 0 = informational; the nightly full-size run
    enforces 2.0 at n=1000).
``REPRO_BENCH_MIN_BATCH_VS_SCALAR_ALL``
    Floor applied to *every* feasibility workload, headline included
    (default 0; the nightly enforces 1.25 on the numpy arm — the ER
    expander family runs closer to the scalar kernel's best case, see
    ``docs/benchmarks.md``).
``REPRO_BENCH_MIN_BATCH_VS_SCALAR_C``
    Floor for the C arm, applied to every workload (default 0;
    asserted only when the C kernel is available — the nightly builds
    the extension and enforces 2.0, which closes the ER gap the numpy
    arm plateaus under; measured ≈2.6x ER / ≈4.5x chords at n=1000).
``REPRO_BENCH_MIN_SPEC_BUILD``
    Required speculative-arm end-to-end build speedup over the fully
    scalar baseline (default 0; the nightly enforces 1.0 at n=1000).
``REPRO_BENCH_ROUNDS``
    Best-of rounds per arm (default 2).
``REPRO_E16_SOURCES``
    Source count σ of the sharded multi-source build arm (default 4;
    the unit :mod:`repro.core.parallel` distributes across a process
    pool).
``REPRO_BENCH_JOBS`` / ``REPRO_BENCH_MIN_PARALLEL_SCALING``
    Worker-count axis and speedup floor of the parallel build arm
    (see :func:`_common.jobs_axis` / :func:`_common.scaling_floor`);
    the floor is applied only to job counts the host has cores for.
"""

import contextlib
import json
import os
import time

from repro.core import parallel
from repro.core.bulk import kernel_dispatch_stats
from repro.core.ckernel import c_kernel_available
from repro.core.snapshot_cache import shared_cache
from repro.ftbfs.cons2ftbfs import build_cons2ftbfs, feasibility_probes
from repro.ftbfs.generic import build_ft_mbfs
from repro.replacement.base import SourceContext

from _common import (
    RESULTS_DIR,
    emit,
    emit_json,
    jobs_axis,
    parse_workloads,
    scaling_floor,
    table,
    workload_graph,
    workload_label,
)

BATCH_ENGINE = "lex-bulk"
C_ENGINE = "lex-c"


@contextlib.contextmanager
def _c_kernel(mode):
    """Pin ``REPRO_C_KERNEL`` for one timed arm (restored after)."""
    prev = os.environ.get("REPRO_C_KERNEL")
    os.environ["REPRO_C_KERNEL"] = mode
    try:
        yield
    finally:
        if prev is None:
            os.environ.pop("REPRO_C_KERNEL", None)
        else:
            os.environ["REPRO_C_KERNEL"] = prev


def _sizes():
    """The workload ladder, via the shared benchmark grammar.

    ``REPRO_E16_SIZES`` accepts every :func:`_common.parse_workload`
    form, so topology-corpus graphs (``topo:abilene.graphml``,
    ``topo:fattree:k=4``) plug into this benchmark unchanged.
    """
    return parse_workloads("REPRO_E16_SIZES", "chords:1000:300,er:1000:0.008")


def _graph(kind, n, arg, seed=20):
    return workload_graph(kind, n, arg, seed=seed)


def _rounds():
    return max(1, int(os.environ.get("REPRO_BENCH_ROUNDS", "2")))


def _time_batched(ctx, probes):
    """Answer every probe through the batched pipeline (cold cache)."""
    shared_cache().clear()
    source = ctx.source
    t0 = time.perf_counter()
    batch = ctx.query_batch()
    add = batch.add
    certified = 0
    for v, faults, certs in probes:
        if certs is not None:
            upper, lower = certs
            # Step-1 certificates (see cons2ftbfs._plan_vertex): a
            # surviving replacement path answers the probe outright.
            if not upper.has_edge(*faults[1]) or not lower.has_edge(*faults[0]):
                certified += 1
                continue
        add(source, v, faults)
    batch.execute()
    elapsed = time.perf_counter() - t0
    return elapsed, certified, batch.stats


def _time_scalar(ctx, probes):
    """Answer every probe with per-pair scalar point queries (cold)."""
    shared_cache().clear()
    distance = ctx.oracle.distance
    source = ctx.source
    t0 = time.perf_counter()
    for v, faults, _certs in probes:
        distance(source, v, faults)
    return time.perf_counter() - t0


def test_e16_feasibility_workload(benchmark):
    rounds = _rounds()
    min_speedup = float(
        os.environ.get("REPRO_BENCH_MIN_BATCH_VS_SCALAR", "0")
    )
    have_c = c_kernel_available()
    rows = []
    entries = []
    for kind, n, arg in _sizes():
        g = _graph(kind, n, arg)
        n = n if n is not None else g.n  # topo workloads resolve n late
        shared_cache().clear()
        ctx = SourceContext(g, 0, BATCH_ENGINE)
        # The C arm answers the *same* probes through the lex-c oracle
        # (separate memo namespace, C-served strategies); probes are
        # engine-invariant, so step 1 runs once.
        ctx_c = SourceContext(g, 0, C_ENGINE) if have_c else None
        probes = feasibility_probes(ctx)  # runs step 1 once (untimed)
        best_b = best_s = best_c = float("inf")
        stats = stats_c = None
        dispatch = {}
        for _ in range(rounds):
            with _c_kernel("off"):  # numpy arm: C dispatch pinned off
                kernel_dispatch_stats(g, reset=True)
                elapsed, certified, stats = _time_batched(ctx, probes)
                dispatch["numpy"] = kernel_dispatch_stats(g)
            best_b = min(best_b, elapsed)
            if ctx_c is not None:
                with _c_kernel("on"):
                    kernel_dispatch_stats(g, reset=True)
                    elapsed, _, stats_c = _time_batched(ctx_c, probes)
                    dispatch["c"] = kernel_dispatch_stats(g)
                best_c = min(best_c, elapsed)
            best_s = min(best_s, _time_scalar(ctx, probes))
        speedup = best_s / best_b
        speedup_c = best_s / best_c if ctx_c is not None else None
        label = workload_label(kind, n, arg)
        rows.append(
            [
                label,
                len(probes),
                f"{1000.0 * best_s:.1f}",
                f"{1000.0 * best_b:.1f}",
                f"{speedup:.2f}x",
                f"{1000.0 * best_c:.1f}" if ctx_c is not None else "n/a",
                f"{speedup_c:.2f}x" if ctx_c is not None else "n/a",
            ]
        )
        entries.append(
            {
                "kind": kind,
                "n": n,
                "arg": arg,
                "m": g.m,
                "probes": len(probes),
                "certified": certified,
                "batched_seconds": best_b,
                "scalar_seconds": best_s,
                "speedup": speedup,
                "c_seconds": best_c if ctx_c is not None else None,
                "speedup_c": speedup_c,
                "c_vs_numpy": (
                    best_b / best_c if ctx_c is not None else None
                ),
                "executor_stats": stats,
                "executor_stats_c": stats_c,
                # Which kernel tier actually served each batched arm
                # (auto-dispatch made observable).
                "kernel_dispatch": dispatch,
            }
        )
    body = table(
        [
            "workload",
            "probes",
            "per-pair (ms)",
            "numpy (ms)",
            "speedup",
            "lex-c (ms)",
            "speedup",
        ],
        rows,
    )
    body += (
        "\nCons2FTBFS step-2/3 feasibility probes answered via the "
        "\nbatched pipeline (numpy arm: REPRO_C_KERNEL=off; lex-c arm: "
        "\nthe C multi-pair kernel) vs per-pair scalar oracle.distance; "
        f"\nbest of {_rounds()} rounds, snapshot cache cleared per arm."
    )
    emit("E16", "batched feasibility checks vs per-pair scalar", body)
    headline = entries[0]
    emit_json(
        "e16",
        {
            "experiment": "e16_query_batch",
            "engine": BATCH_ENGINE,
            "c_engine": C_ENGINE if have_c else None,
            "rounds": _rounds(),
            "workloads": entries,
            "headline": headline,
            "required_min_speedup": min_speedup,
            "required_min_speedup_c": float(
                os.environ.get("REPRO_BENCH_MIN_BATCH_VS_SCALAR_C", "0")
            ),
        },
    )
    if min_speedup:
        assert headline["speedup"] >= min_speedup, (
            f"batched feasibility checks only {headline['speedup']:.2f}x "
            f"faster than per-pair scalar on {headline['kind']} "
            f"n={headline['n']} (required {min_speedup}x)"
        )
    min_all = float(
        os.environ.get("REPRO_BENCH_MIN_BATCH_VS_SCALAR_ALL", "0")
    )
    if min_all:
        for entry in entries:
            assert entry["speedup"] >= min_all, (
                f"batched feasibility checks only {entry['speedup']:.2f}x "
                f"faster than per-pair scalar on {entry['kind']} "
                f"n={entry['n']} (required {min_all}x on every workload)"
            )
    min_c = float(os.environ.get("REPRO_BENCH_MIN_BATCH_VS_SCALAR_C", "0"))
    if min_c and have_c:
        for entry in entries:
            assert entry["speedup_c"] >= min_c, (
                f"C-kernel feasibility checks only "
                f"{entry['speedup_c']:.2f}x faster than per-pair scalar "
                f"on {entry['kind']} n={entry['n']} (required {min_c}x "
                f"on every workload)"
            )
    kind, n, arg = _sizes()[0]
    if kind == "topo":  # corpus graphs are already mini-sized
        g_small = _graph(kind, n, arg)
    else:
        g_small = _graph(
            kind, min(n, 200), arg if kind == "er" else min(int(arg), 200)
        )
    ctx_small = SourceContext(g_small, 0, BATCH_ENGINE)
    probes_small = feasibility_probes(ctx_small)
    benchmark.pedantic(
        lambda: _time_batched(ctx_small, probes_small), rounds=1, iterations=1
    )


def test_e16_batch_size_curve(benchmark):
    kind, n, arg = _sizes()[0]
    g = _graph(kind, n, arg)
    n = n if n is not None else g.n
    shared_cache().clear()
    ctx = SourceContext(g, 0, BATCH_ENGINE)
    oracle = ctx.oracle
    tree_vertices = [v for v in ctx.tree.vertices() if v != ctx.source]
    edges = sorted(g.edges())
    faults = (edges[len(edges) // 3], edges[2 * len(edges) // 3])
    rows = []
    curve = []
    for size in (1, 4, 16, 64, 256, 1024):
        targets = [tree_vertices[i % len(tree_vertices)] for i in range(size)]
        pairs = [(ctx.source, t) for t in targets]
        shared_cache().clear()
        t0 = time.perf_counter()
        bulk = oracle.distances_bulk(pairs, faults)
        t_bulk = time.perf_counter() - t0
        shared_cache().clear()
        t0 = time.perf_counter()
        scalar = [oracle.distance(s, t, faults) for s, t in pairs]
        t_scalar = time.perf_counter() - t0
        assert bulk == scalar
        rows.append(
            [
                size,
                f"{1e6 * t_bulk / size:.1f}",
                f"{1e6 * t_scalar / size:.1f}",
            ]
        )
        curve.append(
            {
                "batch_size": size,
                "bulk_us_per_pair": 1e6 * t_bulk / size,
                "scalar_us_per_pair": 1e6 * t_scalar / size,
            }
        )
    emit(
        "E16-batch-curve",
        "per-pair latency vs batch size (distances_bulk)",
        table(["batch size", "bulk (us/pair)", "scalar (us/pair)"], rows),
    )
    path = emit_json("e16_curve", {"workload": [kind, n, arg], "curve": curve})
    assert path.exists()
    benchmark.pedantic(
        lambda: oracle.distances_bulk(
            [(ctx.source, t) for t in tree_vertices[:64]], faults
        ),
        rounds=1,
        iterations=1,
    )


#: The three end-to-end build arms: (label, REPRO_QUERY_BATCH,
#: REPRO_SPEC_BATCH).  ``speculative`` is the full default pipeline,
#: ``scalar-step3`` isolates the speculative step-3 wave (wave 1 stays
#: batched), ``scalar`` is the pre-batch pipeline and the baseline the
#: speedup floor applies to.
BUILD_ARMS = [
    ("speculative", "1", "1"),
    ("scalar-step3", "1", "0"),
    ("scalar", "0", "0"),
]


def test_e16_end_to_end_build(benchmark):
    kind, n, arg = _sizes()[0]  # the headline workload (chords n=1000)
    g = _graph(kind, n, arg)
    n = n if n is not None else g.n
    min_spec = float(os.environ.get("REPRO_BENCH_MIN_SPEC_BUILD", "0"))
    times = {}
    sizes = {}
    spec_stats = {}
    dispatch = {}
    for label, qb, spec in BUILD_ARMS:
        os.environ["REPRO_QUERY_BATCH"] = qb
        os.environ["REPRO_SPEC_BATCH"] = spec
        try:
            best = float("inf")
            for _ in range(_rounds()):
                shared_cache().clear()
                shared_cache().reset_stats()
                kernel_dispatch_stats(g, reset=True)
                t0 = time.perf_counter()
                h = build_cons2ftbfs(g, 0, engine=BATCH_ENGINE)
                best = min(best, time.perf_counter() - t0)
            times[label] = best
            sizes[label] = frozenset(h.edges)
            # One cold build's worth of reconciliation counters (the
            # "observable mispredict rate" of the speculation work)
            # and of kernel-tier dispatch (which tier served the arm).
            cs = shared_cache().stats()
            spec_stats[label] = {
                k: cs[k]
                for k in (
                    "spec_planned",
                    "spec_hits",
                    "spec_misses",
                    "spec_discards",
                )
            }
            dispatch[label] = kernel_dispatch_stats(g)
        finally:
            os.environ.pop("REPRO_QUERY_BATCH", None)
            os.environ.pop("REPRO_SPEC_BATCH", None)
    assert len(set(sizes.values())) == 1, (
        "speculative / scalar-step-3 / scalar builds must be byte-identical"
    )
    scalar = times["scalar"]
    rows = []
    for label, _qb, _spec in BUILD_ARMS:
        st = spec_stats[label]
        rate = (
            100.0 * st["spec_discards"] / st["spec_planned"]
            if st["spec_planned"]
            else 0.0
        )
        rows.append(
            [
                label,
                f"{times[label]:.3f}",
                f"{scalar / times[label]:.2f}x",
                st["spec_planned"],
                st["spec_hits"],
                st["spec_discards"],
                f"{rate:.0f}%",
            ]
        )
    emit(
        "E16-build",
        f"end-to-end build_cons2ftbfs arms ({workload_label(kind, n, arg)})",
        table(
            [
                "arm",
                "seconds",
                "vs scalar",
                "spec planned",
                "hits",
                "discards",
                "mispredict",
            ],
            rows,
        ),
    )
    emit_json(
        "e16_build",
        {
            "experiment": "e16_end_to_end_build",
            "workload": [kind, n, arg],
            "engine": BATCH_ENGINE,
            "rounds": _rounds(),
            "arms": {
                label: {
                    "seconds": times[label],
                    "speedup_vs_scalar": scalar / times[label],
                    "speculation": spec_stats[label],
                    "kernel_dispatch": dispatch[label],
                }
                for label, _qb, _spec in BUILD_ARMS
            },
        },
    )
    if min_spec:
        speedup = scalar / times["speculative"]
        assert speedup >= min_spec, (
            f"speculative-step-3 build only {speedup:.2f}x vs the scalar "
            f"baseline on {kind} n={n} (required {min_spec}x)"
        )
    benchmark.pedantic(
        lambda: build_cons2ftbfs(g, 0, engine=BATCH_ENGINE),
        rounds=1,
        iterations=1,
    )


def test_e16_parallel_build(benchmark):
    """Sharded σ-source build across the jobs axis, bit-identity enforced.

    Times the same ``build_ft_mbfs`` workload (σ sources ×
    ``build_cons2ftbfs``) at every worker count of
    :func:`_common.jobs_axis`, asserts every parallel arm's structure
    is *bit-identical* to ``jobs=1``, and applies
    ``REPRO_BENCH_MIN_PARALLEL_SCALING`` to arms the host actually has
    cores for (a 1-core box records the axis as informational instead
    of failing on pool overhead).  The records merge into
    ``BENCH_e16.json`` under a ``"parallel"`` key so scaling history
    rides the same artifact as the batching history.
    """
    kind, n, arg = _sizes()[0]
    g = _graph(kind, n, arg)
    n = n if n is not None else g.n
    sigma = max(2, int(os.environ.get("REPRO_E16_SOURCES", "4")))
    sources = list(range(min(sigma, g.n)))
    rounds = _rounds()
    axis = jobs_axis()
    floor = scaling_floor()
    cores = os.cpu_count() or 1
    rows = []
    arms = []
    baseline_edges = None
    baseline_seconds = None
    for j in axis:
        best = float("inf")
        best_stats = {}
        for _ in range(rounds):
            shared_cache().clear()
            t0 = time.perf_counter()
            h = build_ft_mbfs(
                g, sources, 2, builder=build_cons2ftbfs,
                jobs=j, engine=BATCH_ENGINE,
            )
            elapsed = time.perf_counter() - t0
            if elapsed < best:
                best = elapsed
                best_stats = parallel.last_run_stats() if j > 1 else {}
        if baseline_edges is None:
            baseline_edges = h.edges
            baseline_seconds = best
        else:
            assert h.edges == baseline_edges, (
                f"jobs={j} build diverged from the jobs=1 structure"
            )
        scaling = baseline_seconds / best if best else 0.0
        effective = best_stats.get("effective_jobs", 1)
        degraded = best_stats.get("degraded")
        enforced = bool(floor) and j > 1 and cores >= j and not degraded
        rows.append(
            [
                j,
                effective,
                f"{best:.3f}",
                f"{scaling:.2f}x",
                f"{1000.0 * best_stats.get('merge_seconds', 0.0):.1f}",
                "yes" if enforced else "no",
            ]
        )
        arms.append(
            {
                "jobs": j,
                "effective_jobs": effective,
                "seconds": best,
                "scaling_vs_serial": scaling,
                "merge_seconds": best_stats.get("merge_seconds", 0.0),
                "degraded": degraded,
                "floor_enforced": enforced,
            }
        )
        if enforced:
            assert scaling >= floor, (
                f"σ={sigma} sharded build scaled only {scaling:.2f}x at "
                f"jobs={j} on a {cores}-core host (required {floor}x)"
            )
    body = table(
        ["jobs", "effective", "seconds", "scaling", "merge (ms)", "floor"],
        rows,
    )
    body += (
        f"\nσ={sigma}-source build_ft_mbfs(cons2) on "
        f"{workload_label(kind, n, arg)}, "
        f"\nbest of {rounds} rounds; structures bit-identical across "
        f"arms; host has {cores} core(s), floor={floor or 'off'}."
    )
    emit("E16-parallel", "sharded multi-source build scaling", body)
    record = {
        "workload": [kind, n, arg],
        "sources": sigma,
        "cores": cores,
        "rounds": rounds,
        "floor": floor,
        "arms": arms,
    }
    # Merge into the E16 artifact the feasibility test wrote earlier in
    # this run (or a previous one) rather than clobbering it.
    path = RESULTS_DIR / "BENCH_e16.json"
    payload = json.loads(path.read_text()) if path.exists() else {}
    payload["parallel"] = record
    emit_json("e16", payload)
    benchmark.pedantic(
        lambda: build_ft_mbfs(
            g, sources[:2], 2, builder=build_cons2ftbfs,
            jobs=1, engine=BATCH_ENGINE,
        ),
        rounds=1,
        iterations=1,
    )
