"""E11 — ablation of Cons2FTBFS's design choices.

DESIGN.md calls out two ingredients of the construction:

* the *last-edge sparsification* (vs keeping whole replacement paths);
* the *selection preferences* (earliest π-/D-divergence + the
  ``G_{τ-1}(v)`` reuse check) on top of plain canonical choices.

This benchmark isolates both by comparing the dense union, the un-tuned
``simple`` builder and full ``Cons2FTBFS`` across a sweep.
"""

import pytest

from repro.ftbfs import (
    build_cons2ftbfs,
    build_dense_union,
    build_dual_ftbfs_simple,
)
from repro.generators import erdos_renyi, tree_plus_chords
from repro.lowerbound import build_lower_bound_graph

from _common import emit, table

CASES = [
    ("ER n=60", lambda: (erdos_renyi(60, 5.0 / 60, seed=2), 0)),
    ("ER n=100", lambda: (erdos_renyi(100, 5.0 / 100, seed=2), 0)),
    ("chords n=80", lambda: (tree_plus_chords(80, 40, seed=2), 0)),
]


def test_e11_ablation(benchmark):
    rows = []
    for label, make in CASES:
        g, s = make()
        dense = build_dense_union(g, s, 2)
        simple = build_dual_ftbfs_simple(g, s)
        cons2 = build_cons2ftbfs(g, s)
        rows.append(
            [
                label,
                g.m,
                dense.size,
                simple.size,
                cons2.size,
                f"{100.0 * (1 - simple.size / dense.size):.0f}%",
                f"{100.0 * (1 - cons2.size / max(simple.size, 1)):.0f}%",
            ]
        )
        # last-edge sparsification must never lose to the dense union
        assert simple.size <= dense.size
        assert cons2.size <= dense.size

    inst = build_lower_bound_graph(92, 2)
    g, s = inst.graph, inst.sources[0]
    dense = build_dense_union(g, s, 2)
    simple = build_dual_ftbfs_simple(g, s)
    cons2 = build_cons2ftbfs(g, s)
    rows.append(
        ["G*_2 n=92", g.m, dense.size, simple.size, cons2.size,
         f"{100.0 * (1 - simple.size / dense.size):.0f}%",
         f"{100.0 * (1 - cons2.size / max(simple.size, 1)):.0f}%"]
    )

    body = table(
        [
            "instance",
            "m",
            "dense union",
            "last-edge (plain)",
            "Cons2FTBFS",
            "sparsif. saves",
            "prefs save",
        ],
        rows,
    )
    emit("E11", "ablation: sparsification and selection preferences", body)

    g = erdos_renyi(100, 0.05, seed=2)
    benchmark.pedantic(
        lambda: build_dual_ftbfs_simple(g, 0), rounds=2, iterations=1
    )
