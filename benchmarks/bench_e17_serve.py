"""E17 — precompute-and-serve: artifact load vs rebuild, served QPS.

The paper's economics are precompute-per-scenario, then answer
fault-tolerant queries at data-plane speed; PR 7 added the persistence
layer that makes the precomputation durable
(:mod:`repro.core.artifact`) and the socket server that answers from
it (:mod:`repro.serve`).  This benchmark quantifies both halves across
the E10 ladder sizes:

**Cold load vs rebuild** (the headline, enforced by CI).  For each
ladder entry, the time from nothing to a serve-ready oracle two ways,
cold-cache each time:

* *rebuild* — run ``build_cons2ftbfs`` from the raw graph and wrap the
  result in a :class:`~repro.ftbfs.oracle.FTQueryOracle` (what every
  pre-artifact session paid on startup);
* *mmap load* — :func:`~repro.core.artifact.load_artifact` +
  :meth:`~repro.core.artifact.Artifact.oracle`: map the file, adopt
  the stored CSR arrays and preseed the label caches.  No traversal,
  no construction.

The load arm must answer queries identically to the rebuild arm (spot
asserted every rung), and at the ``n >= 1000`` rungs its speedup must
meet ``REPRO_BENCH_MIN_SERVE_LOAD``.

**Served throughput.**  A faulted point-query workload answered
through a live :class:`~repro.serve.QueryServer` (real sockets, real
framing) three ways: *scalar* — one ``point`` request per query on
the default engine; *batched (numpy)* — the same queries in one
``batch`` frame on ``lex-bulk`` (the
:class:`~repro.core.query_batch.PointQueryBatch` pipeline with C
dispatch pinned off); *batched (lex-c)* — the same frame on ``lex-c``
(compiled multi-pair kernel; skipped and recorded as such where the C
kernel cannot load).  All arms must return byte-identical hop vectors.

**Bytes per artifact.**  File size per rung, plus bytes per structure
edge — the memory-per-artifact axis a build-once/serve-everywhere
deployment provisions by.

Environment knobs (used by CI's smoke run):

``REPRO_E17_SIZES``
    Comma list of ``n:p`` ER ladder rungs (default
    ``80:0.07,200:0.035,1000:0.008`` — the E10 family).
``REPRO_E17_QUERIES``
    Queries per served-throughput arm (default 200).
``REPRO_BENCH_MIN_SERVE_LOAD``
    Required mmap-load-vs-rebuild speedup at the ``n >= 1000`` rungs
    (default 0 = informational; CI's smoke leg enforces 5.0).
``REPRO_BENCH_ROUNDS``
    Best-of rounds per timed arm (default 2).
"""

import os
import time

from repro.core.artifact import load_artifact, save_artifact
from repro.core.ckernel import c_kernel_available
from repro.ftbfs.cons2ftbfs import build_cons2ftbfs
from repro.ftbfs.oracle import FTQueryOracle
from repro.generators import erdos_renyi
from repro.serve import QueryServer, ServeClient

from _common import RESULTS_DIR, cold_cache, emit, emit_json, table

BATCH_ENGINE = "lex-bulk"
C_ENGINE = "lex-c"


def _sizes():
    spec = os.environ.get("REPRO_E17_SIZES", "80:0.07,200:0.035,1000:0.008")
    out = []
    for item in spec.split(","):
        n, p = item.split(":")[:2]
        out.append((int(n), float(p)))
    return out


def _rounds():
    return max(1, int(os.environ.get("REPRO_BENCH_ROUNDS", "2")))


def _query_count():
    return max(1, int(os.environ.get("REPRO_E17_QUERIES", "200")))


def _close_quietly(artifact):
    """Best-effort close for timed arms.

    The bulk/C tiers build zero-copy numpy views over the mapping
    (``np.asarray`` on the adopted CSR arrays), and ``Artifact.close``
    deliberately refuses to pull memory out from under a live consumer
    (``BufferError``).  The benchmark keeps no long-lived oracles, so
    letting the interpreter unmap at collection time is correct here.
    """
    try:
        artifact.close()
    except BufferError:
        pass


def _workload(structure, k):
    """k point queries cycling targets and small fault sets.

    Faults are structure edges not incident to the source, so the
    source stays attached and the kernels do real (re)computation work
    instead of serving one memoized tree.
    """
    n = structure.graph.n
    fault_pool = [e for e in sorted(structure.edges) if 0 not in e][:8]
    queries = []
    for i in range(k):
        faults = []
        if fault_pool:
            faults = [fault_pool[i % len(fault_pool)]]
            if i % 3 == 0 and len(fault_pool) > 1:
                faults.append(fault_pool[(i + 3) % len(fault_pool)])
                if faults[0] == faults[1]:
                    faults = faults[:1]
        queries.append(
            {
                "source": 0,
                "target": i % n,
                "faults": [list(e) for e in faults],
            }
        )
    return queries


def _served_arm(artifact, engine, queries, c_kernel_mode):
    """One throughput arm: serve `queries` over a real TCP socket."""
    prev = os.environ.get("REPRO_C_KERNEL")
    os.environ["REPRO_C_KERNEL"] = c_kernel_mode
    try:
        cold_cache()
        server = QueryServer(artifact.oracle(engine=engine), artifact=artifact)
        address = server.start()
        try:
            with ServeClient(address) as client:
                t0 = time.perf_counter()
                hops = client.batch(queries)
                elapsed = time.perf_counter() - t0
        finally:
            server.shutdown()
        return elapsed, hops
    finally:
        if prev is None:
            os.environ.pop("REPRO_C_KERNEL", None)
        else:
            os.environ["REPRO_C_KERNEL"] = prev


def _scalar_arm(artifact, queries):
    """Point-by-point serving on the default engine (one frame each)."""
    cold_cache()
    server = QueryServer(artifact.oracle(), artifact=artifact)
    address = server.start()
    try:
        with ServeClient(address) as client:
            t0 = time.perf_counter()
            hops = [
                client.point(q["source"], q["target"], q["faults"])
                for q in queries
            ]
            elapsed = time.perf_counter() - t0
    finally:
        server.shutdown()
    return elapsed, hops


def test_e17_serve(benchmark):
    rounds = _rounds()
    k = _query_count()
    min_load = float(os.environ.get("REPRO_BENCH_MIN_SERVE_LOAD", "0"))
    have_c = c_kernel_available()
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    rows = []
    entries = []
    for n, p in _sizes():
        g = erdos_renyi(n, p, seed=20)
        path = RESULTS_DIR / f"_e17_{n}.bin"

        best_build = float("inf")
        structure = None
        for _ in range(rounds):
            cold_cache()
            t0 = time.perf_counter()
            structure = build_cons2ftbfs(g, 0)
            oracle = FTQueryOracle(structure)
            oracle.distance(0, n - 1)  # serve-ready: first answer out
            best_build = min(best_build, time.perf_counter() - t0)
        rebuilt_reference = [
            int(d) if d != float("inf") else -1
            for d in (oracle.distance(0, t) for t in range(0, n, max(1, n // 16)))
        ]

        save_artifact(structure, path)
        nbytes = path.stat().st_size

        best_load = float("inf")
        for _ in range(rounds):
            cold_cache()
            t0 = time.perf_counter()
            artifact = load_artifact(path)
            loaded = artifact.oracle()
            loaded.distance(0, n - 1)
            best_load = min(best_load, time.perf_counter() - t0)
            got = [
                int(d) if d != float("inf") else -1
                for d in (
                    loaded.distance(0, t) for t in range(0, n, max(1, n // 16))
                )
            ]
            assert got == rebuilt_reference  # identity before speed
            _close_quietly(artifact)
        load_speedup = best_build / best_load if best_load else float("inf")

        artifact = load_artifact(path)
        queries = _workload(structure, k)
        t_scalar, hops_scalar = _scalar_arm(artifact, queries)
        t_np, hops_np = _served_arm(artifact, BATCH_ENGINE, queries, "off")
        assert hops_np == hops_scalar  # bit-identity across served arms
        t_c = None
        if have_c:
            t_c, hops_c = _served_arm(artifact, C_ENGINE, queries, "on")
            assert hops_c == hops_scalar
        _close_quietly(artifact)
        path.unlink()

        entry = {
            "n": n,
            "p": p,
            "m": g.m,
            "structure_edges": structure.size,
            "artifact_bytes": nbytes,
            "bytes_per_edge": nbytes / max(1, structure.size),
            "rebuild_s": best_build,
            "load_s": best_load,
            "load_speedup": load_speedup,
            "queries": k,
            "scalar_qps": k / t_scalar,
            "batch_numpy_qps": k / t_np,
            "batch_c_qps": (k / t_c) if t_c else None,
        }
        entries.append(entry)
        rows.append(
            [
                n,
                structure.size,
                f"{nbytes / 1024.0:.1f}",
                f"{1000.0 * best_build:.1f}",
                f"{1000.0 * best_load:.2f}",
                f"{load_speedup:.1f}x",
                f"{entry['scalar_qps']:.0f}",
                f"{entry['batch_numpy_qps']:.0f}",
                f"{entry['batch_c_qps']:.0f}" if t_c else "n/a",
            ]
        )

    body = table(
        [
            "n",
            "|H|",
            "artifact KiB",
            "rebuild ms",
            "load ms",
            "load speedup",
            "scalar qps",
            "batch qps",
            "batch-c qps",
        ],
        rows,
    )
    note = (
        "served arms: scalar point frames (default engine) vs one batch "
        "frame (lex-bulk / lex-c); identical hop vectors asserted"
    )
    emit("E17", "precompute-and-serve (artifact load, served QPS)", body + "\n" + note)
    emit_json(
        "e17",
        {
            "experiment": "e17_serve",
            "queries_per_arm": k,
            "rounds": rounds,
            "c_kernel_available": have_c,
            "min_serve_load_floor": min_load,
            "entries": entries,
        },
    )
    if min_load:
        for entry in entries:
            if entry["n"] >= 1000:
                assert entry["load_speedup"] >= min_load, (
                    f"artifact load only {entry['load_speedup']:.1f}x faster "
                    f"than rebuild at n={entry['n']} (required {min_load}x)"
                )

    # pytest-benchmark bookkeeping: one cheap representative round (the
    # real measurements above are manual best-of timings).
    small = entries[0]
    g_small = erdos_renyi(small["n"], small["p"], seed=20)
    s_small = build_cons2ftbfs(g_small, 0)
    path_small = RESULTS_DIR / "_e17_bench.bin"
    save_artifact(s_small, path_small)
    try:
        benchmark.pedantic(
            lambda: _close_quietly(load_artifact(path_small)), rounds=1, iterations=1
        )
    finally:
        path_small.unlink()
