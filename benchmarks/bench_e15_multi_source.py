"""E15 (extension) — multi-source FT-MBFS: upper vs lower bound in σ.

Theorem 1.2's σ-dependence says multi-source structures must grow like
``σ^{1-1/(f+1)}``; the trivial upper bound (union of per-source
structures) grows at most linearly in σ.  This experiment measures both
sides: union-structure sizes on random graphs as σ grows (with the
expected strong overlap between per-source structures), and the forced
lower-bound mass of the multi-source ``G*_1`` next to it.
"""

import pytest

from repro.ftbfs import build_cons2ftbfs, build_ft_mbfs, verify_structure_sampled
from repro.generators import erdos_renyi
from repro.lowerbound import build_lower_bound_graph

from _common import emit, table

SIGMAS = [1, 2, 4, 8]


def test_e15_multi_source_scaling(benchmark):
    g = erdos_renyi(60, 0.08, seed=51)
    rows = []
    prev_size = 0
    for sigma in SIGMAS:
        sources = list(range(sigma))
        h = build_ft_mbfs(g, sources, 2, builder=build_cons2ftbfs)
        verify_structure_sampled(h, samples=40, seed=sigma)
        per_source = h.stats["per_source_size"]
        union_of_sizes = sum(per_source.values())
        overlap = 1 - h.size / union_of_sizes
        rows.append(
            [
                "ER n=60 (upper)",
                sigma,
                h.size,
                union_of_sizes,
                f"{100.0 * overlap:.0f}%",
            ]
        )
        assert h.size >= prev_size  # more sources never shrink the union
        prev_size = h.size
        assert h.size <= union_of_sizes

    lb_rows = []
    for sigma in [1, 2, 4]:
        inst = build_lower_bound_graph(480, 1, sigma=sigma)
        lb_rows.append(
            ["G*_1 n=480 (lower)", sigma, inst.forced_lower_bound(), "-", "-"]
        )

    body = table(
        ["family", "sigma", "|H| / forced", "sum per-source", "overlap saved"],
        rows + lb_rows,
    )
    body += (
        "\nReading: union structures grow sublinearly in sigma thanks to "
        "\nshared edges (overlap column), while the adversarial family's "
        "\nforced mass grows like sigma^(1/2) — the two sides of the "
        "\nmulti-source story of Thm 1.2."
    )
    emit("E15", "multi-source FT-MBFS scaling in sigma", body)

    benchmark.pedantic(
        lambda: build_ft_mbfs(g, [0, 1], 2, builder=build_cons2ftbfs),
        rounds=1,
        iterations=1,
    )
