"""E12 (extension) — graceful degradation and the size/stretch trade-off.

The paper motivates exact structures against the O(n)-size approximate
structures of [12, 13].  This extension experiment quantifies both
directions on one instance:

* degradation: run the f=1 structure of [10] under *two* faults and
  the f=2 structure under *three* — how often do answers stay exact,
  and how bad is the worst stretch?
* trade-off: greedily sparsify the exact f=2 structure under growing
  multiplicative stretch budgets (a stand-in for [12, 13]).
"""

import pytest

from repro.analysis import sparsify_by_stretch, structure_stretch
from repro.ftbfs import build_cons2ftbfs, build_single_ftbfs
from repro.generators import erdos_renyi, sample_fault_sets

from _common import emit, table

N, P, SEED = 24, 0.2, 15


def test_e12_degradation_and_tradeoff(benchmark):
    g = erdos_renyi(N, P, seed=SEED)
    h1 = build_single_ftbfs(g, 0)
    h2 = build_cons2ftbfs(g, 0)

    rows = []
    for label, h, budget in [
        ("f=1 within budget", h1, 1),
        ("f=1 under 2 faults", h1, 2),
        ("f=2 within budget", h2, 2),
        ("f=2 under 3 faults", h2, None),  # sampled triples
    ]:
        if budget is None:
            faults = sample_fault_sets(g, 3, 250, seed=1)
            profile = structure_stretch(h, 3, fault_sets=faults)
        else:
            profile = structure_stretch(h, budget)
        rows.append(
            [
                label,
                h.size,
                f"{profile.exact_fraction:.3f}",
                f"{profile.max_multiplicative:.2f}",
                profile.max_additive,
                profile.disconnected_pairs,
            ]
        )
    deg_table = table(
        ["scenario", "|H|", "exact frac", "max mult", "max add", "cut pairs"],
        rows,
    )

    # within budget everything must be exact
    assert rows[0][2] == "1.000" and rows[2][2] == "1.000"

    trade_rows = []
    for budget in [1.0, 1.5, 2.0, 3.0]:
        sparser = sparsify_by_stretch(g, h2, budget)
        profile = structure_stretch(sparser, 2)
        trade_rows.append(
            [
                f"stretch <= {budget:.1f}",
                sparser.size,
                f"{100.0 * sparser.size / h2.size:.0f}%",
                f"{profile.max_multiplicative:.2f}",
            ]
        )
        assert profile.max_multiplicative <= budget + 1e-9
        assert profile.disconnected_pairs == 0
    sizes = [r[1] for r in trade_rows]
    assert sizes == sorted(sizes, reverse=True)

    body = (
        deg_table
        + "\n\nsize/stretch trade-off (greedy sparsification of the f=2 structure):\n"
        + table(["budget", "|H|", "vs exact", "measured max mult"], trade_rows)
    )
    emit("E12", "degradation beyond budget & size/stretch trade-off", body)

    benchmark.pedantic(
        lambda: structure_stretch(h1, 2), rounds=2, iterations=1
    )
