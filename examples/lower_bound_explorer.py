#!/usr/bin/env python
"""Explore the Theorem 1.2 lower-bound construction ``G*_f``.

Builds the adversarial graph, shows its anatomy (gadget, hub, bipartite
core), verifies a sample of forced-edge certificates, and demonstrates
end to end that deleting a forced edge breaks fault tolerance.

Run:  python examples/lower_bound_explorer.py

Expected output (seconds): the anatomy of ``G*_2`` on n=150 (gadget
depth, hub, |X|, the count of forced bipartite edges and the Thm 1.2
asymptotic mass), a few leaf labels showing which fault set forces
each leaf's edges, certificate checks reporting ``hold``, and a final
demonstration that removing one forced edge makes some vertex's
distance wrong under that fault set.
"""

from repro import (
    build_lower_bound_graph,
    check_witness,
    forced_edge_witnesses,
    is_ft_mbfs,
    theoretical_lower_bound,
)


def main() -> None:
    n, f = 150, 2
    inst = build_lower_bound_graph(n, f)
    g = inst.graph
    gadget = inst.gadgets[0]
    print(f"G*_{f} on n={g.n} vertices, m={g.m} edges (d={inst.d})")
    print(f"  gadget G_{f}(d): root={gadget.root}, "
          f"{gadget.leaf_count} leaves, depth {gadget.depth}")
    print(f"  hub v* = {inst.hub}, |X| = {len(inst.x_vertices)}")
    print(f"  forced bipartite edges: {inst.forced_lower_bound()}")
    print(f"  Thm 1.2 asymptotic mass: n^(2-1/(f+1)) = "
          f"{theoretical_lower_bound(n, f):.0f}\n")

    print("leaf labels (fault sets that force each leaf's bipartite edges):")
    for z in gadget.leaves[: min(6, len(gadget.leaves))]:
        print(f"  leaf {z}: label {gadget.labels[z]}")

    print("\nchecking 30 forced-edge certificates ...")
    witnesses = forced_edge_witnesses(inst, limit=30)
    ok = sum(check_witness(inst, e, s, faults) for e, s, faults in witnesses)
    print(f"  {ok}/30 certificates hold")

    # End-to-end: drop one forced edge from the *entire graph* viewed as
    # a structure; under the certificate's fault set it is no longer an
    # f-failure FT-BFS structure.
    edge, source, faults = witnesses[0]
    reduced = set(g.edges()) - {edge}
    still_ok = is_ft_mbfs(g, reduced, [source], f, fault_sets=[faults])
    print(f"\ndrop forced edge {edge}, fail {faults}:")
    print(f"  structure still valid? {still_ok}  (expected: False)")
    assert not still_ok
    print("=> every FT-BFS structure for this graph needs all "
          f"{inst.forced_lower_bound()} bipartite edges: Omega(n^(5/3)).")


if __name__ == "__main__":
    main()
