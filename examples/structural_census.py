#!/usr/bin/env python
"""Reproduce the paper's structural taxonomy on a real run (Figs. 3, 4, 7).

Runs Algorithm Cons2FTBFS with full evidence recording, then prints
(1) the pairwise detour-configuration census of Definition 3.7 and
(2) the five-way new-ending path classification of Section 3.3.2.

Run:  python examples/structural_census.py

Expected output (seconds): the run's headline counts (new-ending
paths vs satisfied fault pairs), a detour-configuration table whose
mass sits in the equal-endpoints and x-interleaved rows (matching the
paper's Figs. 3-4), and the new-ending classification table with its
class shares (class A dominating, per Fig. 7).
"""

from repro import (
    build_cons2ftbfs,
    detour_census,
    format_table,
    path_class_census,
    tree_plus_chords,
)


def main() -> None:
    # Sparse tree-plus-chords graphs produce long detours and rich
    # interactions - the regime the paper's analysis targets.
    g = tree_plus_chords(60, 35, seed=12)
    h = build_cons2ftbfs(g, 0, keep_records=True)
    print(f"graph: n={g.n}, m={g.m}; structure size {h.size}")
    print(f"new-ending (π,D) paths: {h.stats['new_ending_paths']}, "
          f"satisfied pairs: {h.stats['satisfied_pairs']}\n")

    print("Detour configuration census (Definition 3.7 / Figs. 3-4):")
    census = detour_census(h)
    total = max(1, sum(census.values()))
    rows = [
        [cfg.value, count, f"{100.0 * count / total:.1f}%"]
        for cfg, count in sorted(census.items(), key=lambda kv: -kv[1])
    ]
    print(format_table(["configuration", "pairs", "share"], rows))

    print("\nNew-ending path classes (Fig. 7):")
    classes = path_class_census(h)
    total = max(1, sum(classes.values()))
    rows = [
        [cls.value, count, f"{100.0 * count / total:.1f}%"]
        for cls, count in classes.items()
    ]
    print(format_table(["class", "paths", "share"], rows))

    phase = h.stats["new_edges_by_phase"]
    print(f"\nnew edges by construction phase: single={phase['single']}, "
          f"(π,π)={phase['pipi']}, (π,D)={phase['pid']}")
    per_v = h.stats["new_edges_per_vertex"]
    print(f"max |New(v)| over vertices: {max(per_v.values())} "
          f"(Thm 1.1: O(n^(2/3)) = O({g.n ** (2 / 3):.0f}))")


if __name__ == "__main__":
    main()
