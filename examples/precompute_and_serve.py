#!/usr/bin/env python
"""Precompute-and-serve: save an oracle artifact, then serve it.

The paper's economics are precompute-per-scenario, then answer
fault-tolerant queries at data-plane speed.  This walkthrough is that
deployment story in miniature: build a dual-failure FT-BFS structure,
persist it as a content-addressed flat-array artifact, mmap-load it
back (no rebuild, no traversal — the stored labels preseed the query
caches), start a real socket server over the loaded oracle, answer
point / batch / replacement-path queries through the wire protocol,
and read the server's exact per-endpoint stats.  Served answers are
bit-identical to in-process oracle calls; the format and protocol are
documented in docs/serving.md.

Run:  python examples/precompute_and_serve.py

Expected output (seconds): the artifact's size and content hash, a
load line confirming the mmap'd oracle answers identically to the
freshly built one, the server address, a fault-free vs two-faults
distance pair served over the socket, a batched frame's hop vector,
a surviving route, and the server's request/latency stats table.
"""

import os
import tempfile

from repro import FTQueryOracle, build_cons2ftbfs, erdos_renyi
from repro.core.artifact import load_artifact, save_artifact
from repro.serve import QueryServer, ServeClient, format_stats


def main() -> None:
    # --- build once -------------------------------------------------
    g = erdos_renyi(80, 0.07, seed=20)
    source = 0
    structure = build_cons2ftbfs(g, source)
    built = FTQueryOracle(structure)
    print(f"built: {g.n} nodes, {g.m} links -> structure of {structure.size} links")

    # --- persist as a flat-array artifact ---------------------------
    path = os.path.join(tempfile.mkdtemp(prefix="repro-serve-"), "h.bin")
    save_artifact(structure, path)
    artifact = load_artifact(path)
    print(
        f"artifact: {artifact.nbytes / 1024.0:.1f} KiB at {path}\n"
        f"          {artifact.content_hash}"
    )

    # --- mmap-load and cross-check against the in-process build -----
    served_oracle = artifact.oracle()
    targets = range(0, g.n, 7)
    assert all(
        served_oracle.distance(source, t) == built.distance(source, t)
        for t in targets
    )
    print("loaded:   mmap'd oracle answers identically to the fresh build")

    # --- serve it over a real socket --------------------------------
    server = QueryServer(served_oracle, artifact=artifact)
    address = server.start()
    print(f"serving:  {address[0]}:{address[1]}")
    try:
        with ServeClient(address) as client:
            # A fault pair that forces a real detour: knock out the
            # first link of the surviving route, twice — the second
            # fault hits whatever replacement the first one forced.
            target = 37
            d0 = client.point(source, target, [])
            faults = []
            for _ in range(2):
                _, vertices = client.path(source, target, faults)
                faults.append(tuple(sorted(vertices[:2])))
            d2 = client.point(source, target, faults)
            print(f"point:    dist({source} -> {target}) = {d0} fault-free, "
                  f"{d2} with {faults[0]} and {faults[1]} down")
            hops = client.batch(
                [{"source": source, "target": t, "faults": faults}
                 for t in (5, 17, 29, 41, 53)]
            )
            print(f"batch:    hops under faults for 5 targets: {hops}")
            hops_on_route, vertices = client.path(source, target, faults)
            print(f"path:     surviving route ({hops_on_route} hops): "
                  f"{' -> '.join(map(str, vertices))}")
            stats = client.stats()
    finally:
        server.shutdown()
    print("stats:")
    print(format_stats(stats))


if __name__ == "__main__":
    main()
