#!/usr/bin/env python
"""Resilient routing simulation: live failures against a stored structure.

Simulates an operations timeline on a torus-like backbone: links fail
(up to two at a time), traffic must be rerouted, failed links recover.
All routing decisions are answered from the sparse FT-BFS structure
alone — the full network map is only used to double-check optimality.

Run:  python examples/resilient_routing.py

Expected output (seconds): the backbone/structure sizes, then a
timeline (``t=1..``) of link failures and recoveries; each step names
the event, the flow being routed, its distance, the verdict
("optimal primary route intact" / a reroute notice), and the route
actually taken — every one certified optimal against the full map.
"""

import random

from repro import FTQueryOracle, build_cons2ftbfs, torus_graph
from repro.core.canonical import DistanceOracle


def main() -> None:
    g = torus_graph(5, 6)
    root = 0
    h = build_cons2ftbfs(g, root)
    oracle = FTQueryOracle(h)
    truth = DistanceOracle(g)
    print(f"backbone: {g.n} routers, {g.m} links")
    print(f"stored structure: {h.size} links (f = {h.max_faults})\n")

    rng = random.Random(17)
    live_faults = []
    rerouted = 0
    widened = 0
    for step in range(1, 21):
        # Fail or recover a link.
        if live_faults and (len(live_faults) == 2 or rng.random() < 0.4):
            recovered = live_faults.pop(rng.randrange(len(live_faults)))
            event = f"link {recovered} recovered"
        else:
            candidates = [e for e in sorted(g.edges()) if e not in live_faults]
            failed = rng.choice(candidates)
            live_faults.append(failed)
            event = f"link {failed} FAILED"

        # Route a random flow from the root under the current fault set.
        target = rng.randrange(1, g.n)
        d = oracle.distance(root, target, live_faults)
        d_true = truth.distance(root, target, banned_edges=live_faults)
        assert d == d_true, "structure returned a non-optimal distance!"
        baseline = truth.distance(root, target)
        if d > baseline:
            widened += 1
        if d != baseline:
            note = f"rerouted (+{int(d - baseline)} hops)"
            rerouted += 1
        else:
            note = "optimal primary route intact"
        path = oracle.path(root, target, live_faults)
        print(
            f"t={step:>2}  {event:<28} flow->r{target:<3} dist={int(d):<3} {note}"
        )
        print(f"       route: {'-'.join(map(str, path.vertices))}")

    print(
        f"\n{rerouted} of 20 flows needed rerouting; every answer matched "
        "the ground-truth shortest path under the live fault set."
    )


if __name__ == "__main__":
    main()
