#!/usr/bin/env python
"""Quickstart: build, verify and query a dual-failure FT-BFS structure.

Demonstrates the library's core loop in a dozen lines: generate a
random network, run Algorithm ``Cons2FTBFS`` (the paper's main
construction), verify the structure exhaustively against every fault
pair, then answer distance and routing queries from the sparse
structure alone — first fault-free, then with two links failed.

Run:  python examples/quickstart.py

Expected output (seconds): the network/structure sizes (the structure
keeps ~80% of this small dense graph; sparsity shows at scale), the
per-vertex new-edge maximum that Thm 1.1 bounds by O(n^(2/3)), a
"verified" line, and a fault-free vs two-faults distance pair
(2 vs 4) with the surviving route.
"""

from repro import (
    FTQueryOracle,
    build_cons2ftbfs,
    erdos_renyi,
    verify_structure,
)


def main() -> None:
    # A connected random network with some redundancy.
    g = erdos_renyi(60, 0.08, seed=42)
    source = 0
    print(f"network: {g.n} nodes, {g.m} links")

    # Algorithm Cons2FTBFS (the paper's main construction): a sparse
    # subgraph preserving all shortest-path distances from the source
    # under any <= 2 link failures.
    h = build_cons2ftbfs(g, source)
    print(f"dual-failure FT-BFS structure: {h.size} links "
          f"({100.0 * h.size / g.m:.1f}% of the network)")
    print(f"per-vertex new-edge maximum: {h.stats['max_new_edges']} "
          f"(Thm 1.1 bounds this by O(n^2/3))")

    # Exhaustively verify the contract: dist(s, v, H \ F) == dist(s, v, G \ F)
    # for every vertex v and every fault set F with |F| <= 2.
    # (Exhaustive verification is O(m^2) BFS pairs - fine at this size.)
    verify_structure(h)
    print("verified: exact distances preserved under all fault pairs")

    # Query the structure as a routing oracle.  Pick a fault pair that
    # leaves the target connected (a pair of bridges may legitimately
    # cut it off - the structure then agrees the distance is infinite).
    oracle = FTQueryOracle(h)
    target = 37
    edges = sorted(h.edges)
    faults = next(
        [e1, e2]
        for i, e1 in enumerate(edges)
        for e2 in edges[i + 1 :]
        if oracle.distance(source, target, [e1, e2]) != float("inf")
        and oracle.distance(source, target, [e1, e2])
        > oracle.distance(source, target)
    )
    base = oracle.distance(source, target)
    after = oracle.distance(source, target, faults)
    route = oracle.path(source, target, faults)
    print(f"dist(s -> {target}) fault-free: {base}")
    print(f"dist(s -> {target}) after failing {faults}: {after}")
    print(f"surviving route: {'-'.join(map(str, route.vertices))}")


if __name__ == "__main__":
    main()
