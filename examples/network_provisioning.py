#!/usr/bin/env python
"""Network provisioning: lease the fewest channels that keep routing optimal.

This is the paper's motivating scenario (Sec. 1): graph edges are
channels that can be leased; the designer wants the *cheapest* channel
subset that still supports exact shortest-path routing from a service
root even while up to two channels are down.

The script compares the provisioning cost (number of leased channels) of
every strategy the library implements, then spot-checks that the
purchased structures actually deliver optimal routes under failures.

Run:  python examples/network_provisioning.py

Expected output (seconds): a strategy table — whole network, all
replacement paths, single-failure FT-BFS, last-edge sparsification
(``Cons2FTBFS``), and the set-cover approximation — with channel
counts and cost relative to leasing everything (the FT-BFS structures
lease well under 100%), followed by spot-check lines confirming
optimal routing under sampled dual failures.
"""

import random

from repro import (
    FTQueryOracle,
    build_approx_ftmbfs,
    build_cons2ftbfs,
    build_dense_union,
    build_dual_ftbfs_simple,
    build_single_ftbfs,
    bfs_distances,
    erdos_renyi,
    format_table,
    verify_structure_sampled,
)
from repro.core.canonical import DistanceOracle


def main() -> None:
    g = erdos_renyi(48, 0.12, seed=7)
    root = 0
    print(f"candidate network: {g.n} sites, {g.m} leasable channels\n")

    strategies = [
        ("whole network (f=2, trivial)", lambda: None, g.m, 2),
    ]
    options = []
    dense = build_dense_union(g, root, 2)
    options.append(("all replacement paths (f=2)", dense))
    single = build_single_ftbfs(g, root)
    options.append(("single-failure FT-BFS [10] (f=1)", single))
    simple = build_dual_ftbfs_simple(g, root)
    options.append(("last-edge sparsification (f=2)", simple))
    cons2 = build_cons2ftbfs(g, root)
    options.append(("Cons2FTBFS (f=2, Thm 1.1)", cons2))
    approx = build_approx_ftmbfs(g, [root], 1)
    options.append(("greedy set cover (f=1, Thm 1.3)", approx))

    rows = [["whole network", g.m, 2, "100.0%"]]
    for label, h in options:
        rows.append(
            [label, h.size, h.max_faults, f"{100.0 * h.size / g.m:.1f}%"]
        )
    print(format_table(["strategy", "channels", "f", "cost vs full"], rows))

    # Sample failure scenarios and confirm optimal routing on the
    # purchased dual-failure structure.
    print("\nspot-checking routing under random dual failures ...")
    verify_structure_sampled(cons2, samples=150, seed=1)
    oracle = FTQueryOracle(cons2)
    truth = DistanceOracle(g)
    rng = random.Random(3)
    edges = sorted(cons2.edges)
    checked = 0
    for _ in range(200):
        faults = rng.sample(edges, 2)
        v = rng.randrange(g.n)
        got = oracle.distance(root, v, faults)
        want = truth.distance(root, v, banned_edges=faults)
        assert got == want, (v, faults)
        checked += 1
    print(f"OK: {checked} random (target, fault-pair) queries all optimal")
    savings = 100.0 * (1 - cons2.size / g.m)
    print(f"\nleasing Cons2FTBFS saves {savings:.1f}% of channel cost while "
          "keeping routing exact under any two failures")


if __name__ == "__main__":
    main()
