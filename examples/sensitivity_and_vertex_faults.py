#!/usr/bin/env python
"""Extensions tour: sensitivity oracles and vertex-fault structures.

Demonstrates the two fault-model extensions the paper's related work
points at: O(1) single-fault distance queries after tabulation, sparse
2-sensitivity queries, and BFS structures resilient to *vertex*
failures (a router crash rather than a link cut).

Run:  python examples/sensitivity_and_vertex_faults.py

Expected output (seconds): single-fault oracle throughput (thousands
of queries in milliseconds after tabulating the distinct scenarios), a
dual-fault sensitivity query answered over the sparse structure
instead of the full graph, and a vertex-fault structure — verified
exhaustively — shown surviving a router crash with an optimal detour
route.
"""

import random
import time

from repro import erdos_renyi
from repro.core.canonical import DistanceOracle
from repro.ftbfs.sensitivity import (
    DualFaultDistanceOracle,
    SingleFaultDistanceOracle,
)
from repro.ftbfs.vertex import (
    VertexFTQueryOracle,
    build_generic_vertex_ftbfs,
    verify_vertex_structure,
)


def main() -> None:
    g = erdos_renyi(70, 0.07, seed=5)
    root = 0
    print(f"network: {g.n} routers, {g.m} links\n")

    # --- edge-fault sensitivity oracles -----------------------------
    single = SingleFaultDistanceOracle(g, root)
    dual = DualFaultDistanceOracle(g, root)
    truth = DistanceOracle(g)
    rng = random.Random(9)
    edges = sorted(g.edges())

    t0 = time.perf_counter()
    queries = [(rng.randrange(g.n), rng.choice(edges)) for _ in range(2000)]
    answers = [single.distance(v, e) for v, e in queries]
    elapsed = time.perf_counter() - t0
    for (v, e), got in zip(queries[:100], answers[:100]):
        assert got == truth.distance(root, v, banned_edges=(e,))
    print(f"single-fault oracle: 2000 queries in {1000 * elapsed:.1f} ms "
          f"({single.preprocessing_tables} tabulated scenarios)")

    pair = tuple(rng.sample(edges, 2))
    v = 42
    print(f"dual-fault oracle: dist(s -> {v} | fail {pair}) = "
          f"{dual.distance(v, pair)} "
          f"(BFS over |H| = {dual.structure_size} edges, not m = {g.m})\n")

    # --- vertex faults ----------------------------------------------
    hv = build_generic_vertex_ftbfs(g, root, 1)
    verify_vertex_structure(hv)
    print(f"vertex-fault FT-BFS: {hv.size} links, verified exhaustively "
          "against all single router failures")
    oracle = VertexFTQueryOracle(hv)
    crashed = 17
    target = 55
    d_before = oracle.distance(root, target)
    d_after = oracle.distance(root, target, [crashed])
    route = oracle.path(root, target, [crashed])
    print(f"router {crashed} crashes: dist(s -> {target}) {d_before} -> {d_after}")
    print(f"surviving route avoids it: {'-'.join(map(str, route.vertices))}")
    assert crashed not in set(route.vertices)


if __name__ == "__main__":
    main()
